// Runtime-dispatched SIMD kernels for the dense nn hot paths.
//
// This header is the repo's single home for raw vector intrinsics (enforced
// by the sc_lint `no-raw-intrinsics` rule): AVX2 and AVX-512 on x86-64, NEON
// on aarch64, each behind feature macros with a scalar fallback that is the
// reference implementation. The active tier is chosen once at startup by
// CPUID detection (see simd.cpp), can be capped with the SC_SIMD environment
// variable (OFF|scalar|neon|avx2|avx512|auto), and can be overridden per
// process with set_tier (clamped to what the hardware supports).
//
// Determinism contract: every vector kernel below performs, per output
// element, exactly the same IEEE-754 operation sequence as the scalar
// reference — same multiply/add split (no FMA contraction), same ascending-p
// accumulation order, same zero-skip branches. Vector lanes always hold
// *distinct* output elements, never partial sums of one element, so there is
// no horizontal reduction and no reassociation. On builds where the compiler
// does not contract the scalar reference into FMA (the default baseline
// x86-64 and aarch64 build of this repo), results are therefore bit-identical
// across tiers; with -ffast-math/-march=native style contraction of the
// scalar code, parity degrades to the documented 1e-12 kernel tolerance
// (DESIGN.md §5.5). The x86 kernels deliberately use mul+add rather than
// vfmadd for exactly this reason.
#pragma once

#include <cstddef>

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define SC_SIMD_X86 1
#elif defined(__aarch64__) && defined(__ARM_NEON)
#include <arm_neon.h>
#define SC_SIMD_NEON 1
#endif

namespace sc::nn::simd {

/// Dispatch tiers, ordered so that a numerically larger tier is "wider".
/// Neon never coexists with the x86 tiers; the ordering only matters for
/// clamping requested tiers against the detected ceiling.
enum class Tier : int { Scalar = 0, Neon = 1, Avx2 = 2, Avx512 = 3 };

/// Highest tier this process may use: hardware ceiling from CPUID (or the
/// NEON compile-time gate), further capped by the SC_SIMD environment
/// variable. Computed once and cached.
Tier detect();

/// The tier kernels dispatch on right now (<= detect()).
Tier active();

/// Forces the active tier (clamped to detect()); returns the previous tier.
/// Used by the A/B toggle and the parity tests.
Tier set_tier(Tier tier);

const char* tier_name(Tier tier);

/// Parses "off"/"scalar"/"neon"/"avx2"/"avx512"/"auto" (case-insensitive);
/// "auto" and "on" mean the detected ceiling. SC_CHECKs on anything else.
Tier parse_tier(const char* name);

// ---- Per-tier kernel implementations ---------------------------------------
// The *_scalar functions are the reference semantics; the vector versions
// replicate their per-element operation sequence exactly (see header comment).

namespace detail {

/// Rows [i0, i1) of C += A·B (row-major, A is n×k, B is k×m). Four-row
/// register blocking with ascending-p accumulation and an all-zero skip.
inline void gemm_nn_rows_scalar(const double* a, const double* b, double* c,
                                std::size_t i0, std::size_t i1, std::size_t k,
                                std::size_t m) {
  std::size_t i = i0;
  for (; i + 4 <= i1; i += 4) {
    const double* a0 = a + i * k;
    const double* a1 = a0 + k;
    const double* a2 = a1 + k;
    const double* a3 = a2 + k;
    double* c0 = c + i * m;
    double* c1 = c0 + m;
    double* c2 = c1 + m;
    double* c3 = c2 + m;
    for (std::size_t p = 0; p < k; ++p) {
      const double av0 = a0[p], av1 = a1[p], av2 = a2[p], av3 = a3[p];
      if (av0 == 0.0 && av1 == 0.0 && av2 == 0.0 && av3 == 0.0) continue;
      const double* brow = b + p * m;
      for (std::size_t j = 0; j < m; ++j) {
        const double bv = brow[j];
        c0[j] += av0 * bv;
        c1[j] += av1 * bv;
        c2[j] += av2 * bv;
        c3[j] += av3 * bv;
      }
    }
  }
  for (; i < i1; ++i) {
    double* crow = c + i * m;
    for (std::size_t p = 0; p < k; ++p) {
      const double av = a[i * k + p];
      if (av == 0.0) continue;
      const double* brow = b + p * m;
      for (std::size_t j = 0; j < m; ++j) crow[j] += av * brow[j];
    }
  }
}

/// Rows [i0, i1) of C (n,k) += A (n,m)·B (k,m)^T: per-element single
/// accumulator over ascending p (4×4 output tiles in the scalar reference;
/// the tiling never changes the per-element operation sequence).
inline void gemm_nt_rows_scalar(const double* a, const double* b, double* c,
                                std::size_t i0, std::size_t i1, std::size_t m,
                                std::size_t k) {
  for (std::size_t i = i0; i < i1; i += 4) {
    const std::size_t ir = i1 - i < 4 ? i1 - i : 4;
    for (std::size_t j = 0; j < k; j += 4) {
      const std::size_t jr = k - j < 4 ? k - j : 4;
      double acc[4][4] = {};
      for (std::size_t p = 0; p < m; ++p) {
        for (std::size_t r = 0; r < ir; ++r) {
          const double av = a[(i + r) * m + p];
          for (std::size_t s = 0; s < jr; ++s) acc[r][s] += av * b[(j + s) * m + p];
        }
      }
      for (std::size_t r = 0; r < ir; ++r) {
        for (std::size_t s = 0; s < jr; ++s) c[(i + r) * k + j + s] += acc[r][s];
      }
    }
  }
}

/// Output rows [p0, p1) of C (k,m) += A(n,k)^T·B (n,m): four input rows
/// folded per pass, left-associated partial sums, ascending-i outer order.
inline void gemm_tn_cols_scalar(const double* a, const double* b, double* c,
                                std::size_t p0, std::size_t p1, std::size_t n,
                                std::size_t k, std::size_t m) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double* a0 = a + i * k;
    const double* a1 = a0 + k;
    const double* a2 = a1 + k;
    const double* a3 = a2 + k;
    const double* b0 = b + i * m;
    const double* b1 = b0 + m;
    const double* b2 = b1 + m;
    const double* b3 = b2 + m;
    for (std::size_t p = p0; p < p1; ++p) {
      const double av0 = a0[p], av1 = a1[p], av2 = a2[p], av3 = a3[p];
      if (av0 == 0.0 && av1 == 0.0 && av2 == 0.0 && av3 == 0.0) continue;
      double* crow = c + p * m;
      for (std::size_t j = 0; j < m; ++j) {
        crow[j] += av0 * b0[j] + av1 * b1[j] + av2 * b2[j] + av3 * b3[j];
      }
    }
  }
  for (; i < n; ++i) {
    const double* arow = a + i * k;
    const double* brow = b + i * m;
    for (std::size_t p = p0; p < p1; ++p) {
      const double av = arow[p];
      if (av == 0.0) continue;
      double* crow = c + p * m;
      for (std::size_t j = 0; j < m; ++j) crow[j] += av * brow[j];
    }
  }
}

#if defined(SC_SIMD_X86)

// The x86 kernels are compiled with per-function target attributes so the
// translation unit itself stays baseline x86-64; dispatch guarantees a tier's
// code only runs on hardware that supports it.
//
// fp-contract must be forced off here: GCC's default -ffp-contract=fast
// happily fuses _mm512_add_pd(_mm512_mul_pd(...)) pairs into vfmadd (vector
// intrinsics are not contraction barriers), which would silently break the
// mul+add determinism contract above with 1-ulp drift per accumulation.
#pragma GCC push_options
#pragma GCC optimize("fp-contract=off")

__attribute__((target("avx2"))) inline void gemm_nn_rows_avx2(
    const double* a, const double* b, double* c, std::size_t i0, std::size_t i1,
    std::size_t k, std::size_t m) {
  std::size_t i = i0;
  for (; i + 4 <= i1; i += 4) {
    const double* a0 = a + i * k;
    const double* a1 = a0 + k;
    const double* a2 = a1 + k;
    const double* a3 = a2 + k;
    double* c0 = c + i * m;
    double* c1 = c0 + m;
    double* c2 = c1 + m;
    double* c3 = c2 + m;
    for (std::size_t p = 0; p < k; ++p) {
      const double av0 = a0[p], av1 = a1[p], av2 = a2[p], av3 = a3[p];
      if (av0 == 0.0 && av1 == 0.0 && av2 == 0.0 && av3 == 0.0) continue;
      const double* brow = b + p * m;
      const __m256d va0 = _mm256_set1_pd(av0);
      const __m256d va1 = _mm256_set1_pd(av1);
      const __m256d va2 = _mm256_set1_pd(av2);
      const __m256d va3 = _mm256_set1_pd(av3);
      std::size_t j = 0;
      for (; j + 4 <= m; j += 4) {
        const __m256d vb = _mm256_loadu_pd(brow + j);
        _mm256_storeu_pd(c0 + j, _mm256_add_pd(_mm256_loadu_pd(c0 + j),
                                               _mm256_mul_pd(va0, vb)));
        _mm256_storeu_pd(c1 + j, _mm256_add_pd(_mm256_loadu_pd(c1 + j),
                                               _mm256_mul_pd(va1, vb)));
        _mm256_storeu_pd(c2 + j, _mm256_add_pd(_mm256_loadu_pd(c2 + j),
                                               _mm256_mul_pd(va2, vb)));
        _mm256_storeu_pd(c3 + j, _mm256_add_pd(_mm256_loadu_pd(c3 + j),
                                               _mm256_mul_pd(va3, vb)));
      }
      for (; j < m; ++j) {
        const double bv = brow[j];
        c0[j] += av0 * bv;
        c1[j] += av1 * bv;
        c2[j] += av2 * bv;
        c3[j] += av3 * bv;
      }
    }
  }
  for (; i < i1; ++i) {
    double* crow = c + i * m;
    for (std::size_t p = 0; p < k; ++p) {
      const double av = a[i * k + p];
      if (av == 0.0) continue;
      const double* brow = b + p * m;
      const __m256d va = _mm256_set1_pd(av);
      std::size_t j = 0;
      for (; j + 4 <= m; j += 4) {
        _mm256_storeu_pd(crow + j, _mm256_add_pd(_mm256_loadu_pd(crow + j),
                                                 _mm256_mul_pd(va, _mm256_loadu_pd(brow + j))));
      }
      for (; j < m; ++j) crow[j] += av * brow[j];
    }
  }
}

/// Register-accumulating gemm_nn for narrow outputs (m <= 8 * NV, NV <= 4).
///
/// The generic kernel below streams the C rows through memory once per p
/// step, so its C traffic is k times the output size — for this model's
/// narrow layers (m in {1, 8, 24, 32}, k up to 48) that read-modify-write
/// dominates the whole forward pass. Here each 4-row block keeps C in
/// 4*NV zmm accumulators across the entire p loop and touches memory once.
///
/// Determinism: per output element this performs the identical operation
/// sequence as the scalar reference and the generic kernel — same mul+add
/// split, same ascending-p order, same 4-row zero-skip predicate; only the
/// residence of the partial sums (register vs memory) changes, which cannot
/// alter IEEE-754 results. Masked loads/stores keep lanes past m untouched
/// and fault-suppressed.
template <int NV>
__attribute__((target("avx512f"))) inline void gemm_nn_rows_avx512_acc(
    const double* a, const double* b, double* c, std::size_t i0, std::size_t i1,
    std::size_t k, std::size_t m) {
  static_assert(NV >= 1 && NV <= 4, "4 rows x NV accumulators must fit in 32 zmm");
  const std::size_t tail_lanes = m - static_cast<std::size_t>(NV - 1) * 8;
  const __mmask8 tail =
      tail_lanes >= 8 ? static_cast<__mmask8>(0xFF)
                      : static_cast<__mmask8>((1u << tail_lanes) - 1u);
  const auto lane_mask = [tail](int v) {
    return v == NV - 1 ? tail : static_cast<__mmask8>(0xFF);
  };
  std::size_t i = i0;
  for (; i + 4 <= i1; i += 4) {
    const double* a0 = a + i * k;
    const double* a1 = a0 + k;
    const double* a2 = a1 + k;
    const double* a3 = a2 + k;
    double* c0 = c + i * m;
    double* c1 = c0 + m;
    double* c2 = c1 + m;
    double* c3 = c2 + m;
    __m512d acc0[NV], acc1[NV], acc2[NV], acc3[NV];
    for (int v = 0; v < NV; ++v) {
      const __mmask8 mk = lane_mask(v);
      acc0[v] = _mm512_maskz_loadu_pd(mk, c0 + 8 * v);
      acc1[v] = _mm512_maskz_loadu_pd(mk, c1 + 8 * v);
      acc2[v] = _mm512_maskz_loadu_pd(mk, c2 + 8 * v);
      acc3[v] = _mm512_maskz_loadu_pd(mk, c3 + 8 * v);
    }
    for (std::size_t p = 0; p < k; ++p) {
      const double av0 = a0[p], av1 = a1[p], av2 = a2[p], av3 = a3[p];
      if (av0 == 0.0 && av1 == 0.0 && av2 == 0.0 && av3 == 0.0) continue;
      const double* brow = b + p * m;
      const __m512d va0 = _mm512_set1_pd(av0);
      const __m512d va1 = _mm512_set1_pd(av1);
      const __m512d va2 = _mm512_set1_pd(av2);
      const __m512d va3 = _mm512_set1_pd(av3);
      for (int v = 0; v < NV; ++v) {
        const __m512d vb = _mm512_maskz_loadu_pd(lane_mask(v), brow + 8 * v);
        acc0[v] = _mm512_add_pd(acc0[v], _mm512_mul_pd(va0, vb));
        acc1[v] = _mm512_add_pd(acc1[v], _mm512_mul_pd(va1, vb));
        acc2[v] = _mm512_add_pd(acc2[v], _mm512_mul_pd(va2, vb));
        acc3[v] = _mm512_add_pd(acc3[v], _mm512_mul_pd(va3, vb));
      }
    }
    for (int v = 0; v < NV; ++v) {
      const __mmask8 mk = lane_mask(v);
      _mm512_mask_storeu_pd(c0 + 8 * v, mk, acc0[v]);
      _mm512_mask_storeu_pd(c1 + 8 * v, mk, acc1[v]);
      _mm512_mask_storeu_pd(c2 + 8 * v, mk, acc2[v]);
      _mm512_mask_storeu_pd(c3 + 8 * v, mk, acc3[v]);
    }
  }
  for (; i < i1; ++i) {
    const double* arow = a + i * k;
    double* crow = c + i * m;
    __m512d acc[NV];
    for (int v = 0; v < NV; ++v) {
      acc[v] = _mm512_maskz_loadu_pd(lane_mask(v), crow + 8 * v);
    }
    for (std::size_t p = 0; p < k; ++p) {
      const double av = arow[p];
      if (av == 0.0) continue;
      const double* brow = b + p * m;
      const __m512d va = _mm512_set1_pd(av);
      for (int v = 0; v < NV; ++v) {
        const __m512d vb = _mm512_maskz_loadu_pd(lane_mask(v), brow + 8 * v);
        acc[v] = _mm512_add_pd(acc[v], _mm512_mul_pd(va, vb));
      }
    }
    for (int v = 0; v < NV; ++v) {
      _mm512_mask_storeu_pd(crow + 8 * v, lane_mask(v), acc[v]);
    }
  }
}

__attribute__((target("avx512f"))) inline void gemm_nn_rows_avx512(
    const double* a, const double* b, double* c, std::size_t i0, std::size_t i1,
    std::size_t k, std::size_t m) {
  if (m > 0 && m <= 32) {
    switch ((m + 7) / 8) {
      case 1: return gemm_nn_rows_avx512_acc<1>(a, b, c, i0, i1, k, m);
      case 2: return gemm_nn_rows_avx512_acc<2>(a, b, c, i0, i1, k, m);
      case 3: return gemm_nn_rows_avx512_acc<3>(a, b, c, i0, i1, k, m);
      default: return gemm_nn_rows_avx512_acc<4>(a, b, c, i0, i1, k, m);
    }
  }
  std::size_t i = i0;
  for (; i + 4 <= i1; i += 4) {
    const double* a0 = a + i * k;
    const double* a1 = a0 + k;
    const double* a2 = a1 + k;
    const double* a3 = a2 + k;
    double* c0 = c + i * m;
    double* c1 = c0 + m;
    double* c2 = c1 + m;
    double* c3 = c2 + m;
    for (std::size_t p = 0; p < k; ++p) {
      const double av0 = a0[p], av1 = a1[p], av2 = a2[p], av3 = a3[p];
      if (av0 == 0.0 && av1 == 0.0 && av2 == 0.0 && av3 == 0.0) continue;
      const double* brow = b + p * m;
      const __m512d va0 = _mm512_set1_pd(av0);
      const __m512d va1 = _mm512_set1_pd(av1);
      const __m512d va2 = _mm512_set1_pd(av2);
      const __m512d va3 = _mm512_set1_pd(av3);
      std::size_t j = 0;
      for (; j + 8 <= m; j += 8) {
        const __m512d vb = _mm512_loadu_pd(brow + j);
        _mm512_storeu_pd(c0 + j, _mm512_add_pd(_mm512_loadu_pd(c0 + j),
                                               _mm512_mul_pd(va0, vb)));
        _mm512_storeu_pd(c1 + j, _mm512_add_pd(_mm512_loadu_pd(c1 + j),
                                               _mm512_mul_pd(va1, vb)));
        _mm512_storeu_pd(c2 + j, _mm512_add_pd(_mm512_loadu_pd(c2 + j),
                                               _mm512_mul_pd(va2, vb)));
        _mm512_storeu_pd(c3 + j, _mm512_add_pd(_mm512_loadu_pd(c3 + j),
                                               _mm512_mul_pd(va3, vb)));
      }
      if (j < m) {
        const __mmask8 tail = static_cast<__mmask8>((1u << (m - j)) - 1u);
        const __m512d vb = _mm512_maskz_loadu_pd(tail, brow + j);
        _mm512_mask_storeu_pd(
            c0 + j, tail,
            _mm512_add_pd(_mm512_maskz_loadu_pd(tail, c0 + j), _mm512_mul_pd(va0, vb)));
        _mm512_mask_storeu_pd(
            c1 + j, tail,
            _mm512_add_pd(_mm512_maskz_loadu_pd(tail, c1 + j), _mm512_mul_pd(va1, vb)));
        _mm512_mask_storeu_pd(
            c2 + j, tail,
            _mm512_add_pd(_mm512_maskz_loadu_pd(tail, c2 + j), _mm512_mul_pd(va2, vb)));
        _mm512_mask_storeu_pd(
            c3 + j, tail,
            _mm512_add_pd(_mm512_maskz_loadu_pd(tail, c3 + j), _mm512_mul_pd(va3, vb)));
      }
    }
  }
  for (; i < i1; ++i) {
    double* crow = c + i * m;
    for (std::size_t p = 0; p < k; ++p) {
      const double av = a[i * k + p];
      if (av == 0.0) continue;
      const double* brow = b + p * m;
      const __m512d va = _mm512_set1_pd(av);
      std::size_t j = 0;
      for (; j + 8 <= m; j += 8) {
        _mm512_storeu_pd(crow + j, _mm512_add_pd(_mm512_loadu_pd(crow + j),
                                                 _mm512_mul_pd(va, _mm512_loadu_pd(brow + j))));
      }
      if (j < m) {
        const __mmask8 tail = static_cast<__mmask8>((1u << (m - j)) - 1u);
        _mm512_mask_storeu_pd(
            crow + j, tail,
            _mm512_add_pd(_mm512_maskz_loadu_pd(tail, crow + j),
                          _mm512_mul_pd(va, _mm512_maskz_loadu_pd(tail, brow + j))));
      }
    }
  }
}

// gemm_nt keeps one accumulator per output element (lanes hold adjacent j
// columns, never partial sums of one dot product), which requires the B tile
// transposed so consecutive j values for a fixed p are contiguous. The pack
// is a pure data movement — it cannot change numerics — and is amortised over
// the whole row panel.

inline constexpr std::size_t kNtTile = 8;

/// Packs bt[p * jr_padded + s] = b[(j + s) * m + p] for s in [0, jr).
inline void pack_bt(const double* b, double* bt, std::size_t j, std::size_t jr,
                    std::size_t m) {
  for (std::size_t p = 0; p < m; ++p) {
    for (std::size_t s = 0; s < jr; ++s) bt[p * kNtTile + s] = b[(j + s) * m + p];
    for (std::size_t s = jr; s < kNtTile; ++s) bt[p * kNtTile + s] = 0.0;
  }
}

__attribute__((target("avx2"))) inline void gemm_nt_rows_avx2(
    const double* a, const double* b, double* c, double* bt, std::size_t i0,
    std::size_t i1, std::size_t m, std::size_t k) {
  for (std::size_t j = 0; j < k; j += 4) {
    const std::size_t jr = k - j < 4 ? k - j : 4;
    pack_bt(b, bt, j, jr, m);
    for (std::size_t i = i0; i < i1; ++i) {
      const double* arow = a + i * m;
      __m256d acc = _mm256_setzero_pd();
      for (std::size_t p = 0; p < m; ++p) {
        const __m256d va = _mm256_set1_pd(arow[p]);
        const __m256d vb = _mm256_loadu_pd(bt + p * kNtTile);
        acc = _mm256_add_pd(acc, _mm256_mul_pd(va, vb));
      }
      double lanes[4];
      _mm256_storeu_pd(lanes, acc);
      for (std::size_t s = 0; s < jr; ++s) c[i * k + j + s] += lanes[s];
    }
  }
}

__attribute__((target("avx512f"))) inline void gemm_nt_rows_avx512(
    const double* a, const double* b, double* c, double* bt, std::size_t i0,
    std::size_t i1, std::size_t m, std::size_t k) {
  for (std::size_t j = 0; j < k; j += kNtTile) {
    const std::size_t jr = k - j < kNtTile ? k - j : kNtTile;
    pack_bt(b, bt, j, jr, m);
    for (std::size_t i = i0; i < i1; ++i) {
      const double* arow = a + i * m;
      __m512d acc = _mm512_setzero_pd();
      for (std::size_t p = 0; p < m; ++p) {
        const __m512d va = _mm512_set1_pd(arow[p]);
        const __m512d vb = _mm512_loadu_pd(bt + p * kNtTile);
        acc = _mm512_add_pd(acc, _mm512_mul_pd(va, vb));
      }
      double lanes[kNtTile];
      _mm512_storeu_pd(lanes, acc);
      for (std::size_t s = 0; s < jr; ++s) c[i * k + j + s] += lanes[s];
    }
  }
}

__attribute__((target("avx2"))) inline void gemm_tn_cols_avx2(
    const double* a, const double* b, double* c, std::size_t p0, std::size_t p1,
    std::size_t n, std::size_t k, std::size_t m) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double* a0 = a + i * k;
    const double* a1 = a0 + k;
    const double* a2 = a1 + k;
    const double* a3 = a2 + k;
    const double* b0 = b + i * m;
    const double* b1 = b0 + m;
    const double* b2 = b1 + m;
    const double* b3 = b2 + m;
    for (std::size_t p = p0; p < p1; ++p) {
      const double av0 = a0[p], av1 = a1[p], av2 = a2[p], av3 = a3[p];
      if (av0 == 0.0 && av1 == 0.0 && av2 == 0.0 && av3 == 0.0) continue;
      double* crow = c + p * m;
      const __m256d va0 = _mm256_set1_pd(av0);
      const __m256d va1 = _mm256_set1_pd(av1);
      const __m256d va2 = _mm256_set1_pd(av2);
      const __m256d va3 = _mm256_set1_pd(av3);
      std::size_t j = 0;
      for (; j + 4 <= m; j += 4) {
        // Left-associated exactly like the scalar reference:
        // ((av0*b0 + av1*b1) + av2*b2) + av3*b3, then one add into C.
        __m256d t = _mm256_mul_pd(va0, _mm256_loadu_pd(b0 + j));
        t = _mm256_add_pd(t, _mm256_mul_pd(va1, _mm256_loadu_pd(b1 + j)));
        t = _mm256_add_pd(t, _mm256_mul_pd(va2, _mm256_loadu_pd(b2 + j)));
        t = _mm256_add_pd(t, _mm256_mul_pd(va3, _mm256_loadu_pd(b3 + j)));
        _mm256_storeu_pd(crow + j, _mm256_add_pd(_mm256_loadu_pd(crow + j), t));
      }
      for (; j < m; ++j) {
        crow[j] += av0 * b0[j] + av1 * b1[j] + av2 * b2[j] + av3 * b3[j];
      }
    }
  }
  for (; i < n; ++i) {
    const double* arow = a + i * k;
    const double* brow = b + i * m;
    for (std::size_t p = p0; p < p1; ++p) {
      const double av = arow[p];
      if (av == 0.0) continue;
      double* crow = c + p * m;
      const __m256d va = _mm256_set1_pd(av);
      std::size_t j = 0;
      for (; j + 4 <= m; j += 4) {
        _mm256_storeu_pd(crow + j, _mm256_add_pd(_mm256_loadu_pd(crow + j),
                                                 _mm256_mul_pd(va, _mm256_loadu_pd(brow + j))));
      }
      for (; j < m; ++j) crow[j] += av * brow[j];
    }
  }
}

__attribute__((target("avx512f"))) inline void gemm_tn_cols_avx512(
    const double* a, const double* b, double* c, std::size_t p0, std::size_t p1,
    std::size_t n, std::size_t k, std::size_t m) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double* a0 = a + i * k;
    const double* a1 = a0 + k;
    const double* a2 = a1 + k;
    const double* a3 = a2 + k;
    const double* b0 = b + i * m;
    const double* b1 = b0 + m;
    const double* b2 = b1 + m;
    const double* b3 = b2 + m;
    for (std::size_t p = p0; p < p1; ++p) {
      const double av0 = a0[p], av1 = a1[p], av2 = a2[p], av3 = a3[p];
      if (av0 == 0.0 && av1 == 0.0 && av2 == 0.0 && av3 == 0.0) continue;
      double* crow = c + p * m;
      const __m512d va0 = _mm512_set1_pd(av0);
      const __m512d va1 = _mm512_set1_pd(av1);
      const __m512d va2 = _mm512_set1_pd(av2);
      const __m512d va3 = _mm512_set1_pd(av3);
      std::size_t j = 0;
      for (; j + 8 <= m; j += 8) {
        __m512d t = _mm512_mul_pd(va0, _mm512_loadu_pd(b0 + j));
        t = _mm512_add_pd(t, _mm512_mul_pd(va1, _mm512_loadu_pd(b1 + j)));
        t = _mm512_add_pd(t, _mm512_mul_pd(va2, _mm512_loadu_pd(b2 + j)));
        t = _mm512_add_pd(t, _mm512_mul_pd(va3, _mm512_loadu_pd(b3 + j)));
        _mm512_storeu_pd(crow + j, _mm512_add_pd(_mm512_loadu_pd(crow + j), t));
      }
      for (; j < m; ++j) {
        crow[j] += av0 * b0[j] + av1 * b1[j] + av2 * b2[j] + av3 * b3[j];
      }
    }
  }
  for (; i < n; ++i) {
    const double* arow = a + i * k;
    const double* brow = b + i * m;
    for (std::size_t p = p0; p < p1; ++p) {
      const double av = arow[p];
      if (av == 0.0) continue;
      double* crow = c + p * m;
      const __m512d va = _mm512_set1_pd(av);
      std::size_t j = 0;
      for (; j + 8 <= m; j += 8) {
        _mm512_storeu_pd(crow + j, _mm512_add_pd(_mm512_loadu_pd(crow + j),
                                                 _mm512_mul_pd(va, _mm512_loadu_pd(brow + j))));
      }
      for (; j < m; ++j) crow[j] += av * brow[j];
    }
  }
}

// Elementwise x86 kernels: single-rounding per scalar op, so vector and
// scalar paths are bit-identical unconditionally.

#define SC_SIMD_EW_AVX2(NAME, VEXPR, SEXPR)                                         \
  __attribute__((target("avx2"))) inline void NAME##_avx2(                          \
      const double* a, const double* b, double* o, std::size_t n) {                 \
    std::size_t i = 0;                                                              \
    for (; i + 4 <= n; i += 4) {                                                    \
      const __m256d va = _mm256_loadu_pd(a + i);                                    \
      const __m256d vb = _mm256_loadu_pd(b + i);                                    \
      _mm256_storeu_pd(o + i, VEXPR);                                               \
    }                                                                               \
    for (; i < n; ++i) o[i] = SEXPR;                                                \
  }

#define SC_SIMD_EW_AVX512(NAME, VEXPR, SEXPR)                                       \
  __attribute__((target("avx512f"))) inline void NAME##_avx512(                     \
      const double* a, const double* b, double* o, std::size_t n) {                 \
    std::size_t i = 0;                                                              \
    for (; i + 8 <= n; i += 8) {                                                    \
      const __m512d va = _mm512_loadu_pd(a + i);                                    \
      const __m512d vb = _mm512_loadu_pd(b + i);                                    \
      _mm512_storeu_pd(o + i, VEXPR);                                               \
    }                                                                               \
    for (; i < n; ++i) o[i] = SEXPR;                                                \
  }

SC_SIMD_EW_AVX2(add, _mm256_add_pd(va, vb), a[i] + b[i])
SC_SIMD_EW_AVX512(add, _mm512_add_pd(va, vb), a[i] + b[i])
SC_SIMD_EW_AVX2(sub, _mm256_sub_pd(va, vb), a[i] - b[i])
SC_SIMD_EW_AVX512(sub, _mm512_sub_pd(va, vb), a[i] - b[i])
SC_SIMD_EW_AVX2(mul, _mm256_mul_pd(va, vb), a[i] * b[i])
SC_SIMD_EW_AVX512(mul, _mm512_mul_pd(va, vb), a[i] * b[i])

#undef SC_SIMD_EW_AVX2
#undef SC_SIMD_EW_AVX512

__attribute__((target("avx2"))) inline void scale_avx2(const double* a, double s,
                                                       double* o, std::size_t n) {
  const __m256d vs = _mm256_set1_pd(s);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(o + i, _mm256_mul_pd(vs, _mm256_loadu_pd(a + i)));
  }
  for (; i < n; ++i) o[i] = s * a[i];
}

__attribute__((target("avx512f"))) inline void scale_avx512(const double* a, double s,
                                                            double* o, std::size_t n) {
  const __m512d vs = _mm512_set1_pd(s);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(o + i, _mm512_mul_pd(vs, _mm512_loadu_pd(a + i)));
  }
  for (; i < n; ++i) o[i] = s * a[i];
}

__attribute__((target("avx2"))) inline void add_scalar_avx2(const double* a, double s,
                                                            double* o, std::size_t n) {
  const __m256d vs = _mm256_set1_pd(s);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(o + i, _mm256_add_pd(_mm256_loadu_pd(a + i), vs));
  }
  for (; i < n; ++i) o[i] = a[i] + s;
}

__attribute__((target("avx512f"))) inline void add_scalar_avx512(const double* a,
                                                                 double s, double* o,
                                                                 std::size_t n) {
  const __m512d vs = _mm512_set1_pd(s);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(o + i, _mm512_add_pd(_mm512_loadu_pd(a + i), vs));
  }
  for (; i < n; ++i) o[i] = a[i] + s;
}

__attribute__((target("avx2"))) inline void accumulate_avx2(double* dst,
                                                            const double* src,
                                                            std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i,
                     _mm256_add_pd(_mm256_loadu_pd(dst + i), _mm256_loadu_pd(src + i)));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

__attribute__((target("avx512f"))) inline void accumulate_avx512(double* dst,
                                                                 const double* src,
                                                                 std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(dst + i,
                     _mm512_add_pd(_mm512_loadu_pd(dst + i), _mm512_loadu_pd(src + i)));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

__attribute__((target("avx2"))) inline void accumulate_neg_avx2(double* dst,
                                                                const double* src,
                                                                std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i,
                     _mm256_sub_pd(_mm256_loadu_pd(dst + i), _mm256_loadu_pd(src + i)));
  }
  for (; i < n; ++i) dst[i] -= src[i];
}

__attribute__((target("avx512f"))) inline void accumulate_neg_avx512(double* dst,
                                                                     const double* src,
                                                                     std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(dst + i,
                     _mm512_sub_pd(_mm512_loadu_pd(dst + i), _mm512_loadu_pd(src + i)));
  }
  for (; i < n; ++i) dst[i] -= src[i];
}

__attribute__((target("avx2"))) inline void accumulate_scaled_avx2(double* dst,
                                                                   const double* src,
                                                                   double s,
                                                                   std::size_t n) {
  const __m256d vs = _mm256_set1_pd(s);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i, _mm256_add_pd(_mm256_loadu_pd(dst + i),
                                            _mm256_mul_pd(vs, _mm256_loadu_pd(src + i))));
  }
  for (; i < n; ++i) dst[i] += s * src[i];
}

__attribute__((target("avx512f"))) inline void accumulate_scaled_avx512(
    double* dst, const double* src, double s, std::size_t n) {
  const __m512d vs = _mm512_set1_pd(s);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(dst + i, _mm512_add_pd(_mm512_loadu_pd(dst + i),
                                            _mm512_mul_pd(vs, _mm512_loadu_pd(src + i))));
  }
  for (; i < n; ++i) dst[i] += s * src[i];
}

__attribute__((target("avx2"))) inline void accumulate_mul_avx2(double* dst,
                                                                const double* a,
                                                                const double* b,
                                                                std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i,
                     _mm256_add_pd(_mm256_loadu_pd(dst + i),
                                   _mm256_mul_pd(_mm256_loadu_pd(a + i),
                                                 _mm256_loadu_pd(b + i))));
  }
  for (; i < n; ++i) dst[i] += a[i] * b[i];
}

__attribute__((target("avx512f"))) inline void accumulate_mul_avx512(double* dst,
                                                                     const double* a,
                                                                     const double* b,
                                                                     std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(dst + i,
                     _mm512_add_pd(_mm512_loadu_pd(dst + i),
                                   _mm512_mul_pd(_mm512_loadu_pd(a + i),
                                                 _mm512_loadu_pd(b + i))));
  }
  for (; i < n; ++i) dst[i] += a[i] * b[i];
}

#pragma GCC pop_options

#endif  // SC_SIMD_X86

#if defined(SC_SIMD_NEON)

// NEON (aarch64, 2-wide doubles). Same determinism contract: mul+add split
// (no vfmaq), ascending accumulation, scalar tails with identical ops —
// and the same fp-contract barrier, since vmulq/vaddq pairs contract into
// vfmaq just as readily.
#pragma GCC push_options
#pragma GCC optimize("fp-contract=off")

inline void gemm_nn_rows_neon(const double* a, const double* b, double* c,
                              std::size_t i0, std::size_t i1, std::size_t k,
                              std::size_t m) {
  std::size_t i = i0;
  for (; i + 4 <= i1; i += 4) {
    const double* a0 = a + i * k;
    const double* a1 = a0 + k;
    const double* a2 = a1 + k;
    const double* a3 = a2 + k;
    double* c0 = c + i * m;
    double* c1 = c0 + m;
    double* c2 = c1 + m;
    double* c3 = c2 + m;
    for (std::size_t p = 0; p < k; ++p) {
      const double av0 = a0[p], av1 = a1[p], av2 = a2[p], av3 = a3[p];
      if (av0 == 0.0 && av1 == 0.0 && av2 == 0.0 && av3 == 0.0) continue;
      const double* brow = b + p * m;
      const float64x2_t va0 = vdupq_n_f64(av0);
      const float64x2_t va1 = vdupq_n_f64(av1);
      const float64x2_t va2 = vdupq_n_f64(av2);
      const float64x2_t va3 = vdupq_n_f64(av3);
      std::size_t j = 0;
      for (; j + 2 <= m; j += 2) {
        const float64x2_t vb = vld1q_f64(brow + j);
        vst1q_f64(c0 + j, vaddq_f64(vld1q_f64(c0 + j), vmulq_f64(va0, vb)));
        vst1q_f64(c1 + j, vaddq_f64(vld1q_f64(c1 + j), vmulq_f64(va1, vb)));
        vst1q_f64(c2 + j, vaddq_f64(vld1q_f64(c2 + j), vmulq_f64(va2, vb)));
        vst1q_f64(c3 + j, vaddq_f64(vld1q_f64(c3 + j), vmulq_f64(va3, vb)));
      }
      for (; j < m; ++j) {
        const double bv = brow[j];
        c0[j] += av0 * bv;
        c1[j] += av1 * bv;
        c2[j] += av2 * bv;
        c3[j] += av3 * bv;
      }
    }
  }
  for (; i < i1; ++i) {
    double* crow = c + i * m;
    for (std::size_t p = 0; p < k; ++p) {
      const double av = a[i * k + p];
      if (av == 0.0) continue;
      const double* brow = b + p * m;
      const float64x2_t va = vdupq_n_f64(av);
      std::size_t j = 0;
      for (; j + 2 <= m; j += 2) {
        vst1q_f64(crow + j, vaddq_f64(vld1q_f64(crow + j), vmulq_f64(va, vld1q_f64(brow + j))));
      }
      for (; j < m; ++j) crow[j] += av * brow[j];
    }
  }
}

inline void add_neon(const double* a, const double* b, double* o, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) vst1q_f64(o + i, vaddq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
  for (; i < n; ++i) o[i] = a[i] + b[i];
}

inline void sub_neon(const double* a, const double* b, double* o, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) vst1q_f64(o + i, vsubq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
  for (; i < n; ++i) o[i] = a[i] - b[i];
}

inline void mul_neon(const double* a, const double* b, double* o, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) vst1q_f64(o + i, vmulq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
  for (; i < n; ++i) o[i] = a[i] * b[i];
}

inline void accumulate_neon(double* dst, const double* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(dst + i, vaddq_f64(vld1q_f64(dst + i), vld1q_f64(src + i)));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

#pragma GCC pop_options

#endif  // SC_SIMD_NEON

}  // namespace detail

// ---- Dispatched entry points ------------------------------------------------
// Each takes the tier explicitly (callers read it once per op, so one op never
// mixes tiers even if set_tier races). Tiers the build does not include fall
// through to the scalar reference.

inline void gemm_nn_rows(Tier tier, const double* a, const double* b, double* c,
                         std::size_t i0, std::size_t i1, std::size_t k,
                         std::size_t m) {
#if defined(SC_SIMD_X86)
  if (tier == Tier::Avx512) return detail::gemm_nn_rows_avx512(a, b, c, i0, i1, k, m);
  if (tier == Tier::Avx2) return detail::gemm_nn_rows_avx2(a, b, c, i0, i1, k, m);
#elif defined(SC_SIMD_NEON)
  if (tier == Tier::Neon) return detail::gemm_nn_rows_neon(a, b, c, i0, i1, k, m);
#endif
  (void)tier;
  detail::gemm_nn_rows_scalar(a, b, c, i0, i1, k, m);
}

/// `bt` must point to at least `m * detail::kNtTile` doubles of scratch for
/// the packed B tile (ignored by the scalar tier).
inline void gemm_nt_rows(Tier tier, const double* a, const double* b, double* c,
                         double* bt, std::size_t i0, std::size_t i1, std::size_t m,
                         std::size_t k) {
#if defined(SC_SIMD_X86)
  if (tier == Tier::Avx512) return detail::gemm_nt_rows_avx512(a, b, c, bt, i0, i1, m, k);
  if (tier == Tier::Avx2) return detail::gemm_nt_rows_avx2(a, b, c, bt, i0, i1, m, k);
#endif
  (void)tier;
  (void)bt;
  detail::gemm_nt_rows_scalar(a, b, c, i0, i1, m, k);
}

inline void gemm_tn_cols(Tier tier, const double* a, const double* b, double* c,
                         std::size_t p0, std::size_t p1, std::size_t n,
                         std::size_t k, std::size_t m) {
#if defined(SC_SIMD_X86)
  if (tier == Tier::Avx512) return detail::gemm_tn_cols_avx512(a, b, c, p0, p1, n, k, m);
  if (tier == Tier::Avx2) return detail::gemm_tn_cols_avx2(a, b, c, p0, p1, n, k, m);
#endif
  (void)tier;
  detail::gemm_tn_cols_scalar(a, b, c, p0, p1, n, k, m);
}

inline void add(Tier tier, const double* a, const double* b, double* o, std::size_t n) {
#if defined(SC_SIMD_X86)
  if (tier == Tier::Avx512) return detail::add_avx512(a, b, o, n);
  if (tier == Tier::Avx2) return detail::add_avx2(a, b, o, n);
#elif defined(SC_SIMD_NEON)
  if (tier == Tier::Neon) return detail::add_neon(a, b, o, n);
#endif
  (void)tier;
  for (std::size_t i = 0; i < n; ++i) o[i] = a[i] + b[i];
}

inline void sub(Tier tier, const double* a, const double* b, double* o, std::size_t n) {
#if defined(SC_SIMD_X86)
  if (tier == Tier::Avx512) return detail::sub_avx512(a, b, o, n);
  if (tier == Tier::Avx2) return detail::sub_avx2(a, b, o, n);
#elif defined(SC_SIMD_NEON)
  if (tier == Tier::Neon) return detail::sub_neon(a, b, o, n);
#endif
  (void)tier;
  for (std::size_t i = 0; i < n; ++i) o[i] = a[i] - b[i];
}

inline void mul(Tier tier, const double* a, const double* b, double* o, std::size_t n) {
#if defined(SC_SIMD_X86)
  if (tier == Tier::Avx512) return detail::mul_avx512(a, b, o, n);
  if (tier == Tier::Avx2) return detail::mul_avx2(a, b, o, n);
#elif defined(SC_SIMD_NEON)
  if (tier == Tier::Neon) return detail::mul_neon(a, b, o, n);
#endif
  (void)tier;
  for (std::size_t i = 0; i < n; ++i) o[i] = a[i] * b[i];
}

inline void scale(Tier tier, const double* a, double s, double* o, std::size_t n) {
#if defined(SC_SIMD_X86)
  if (tier == Tier::Avx512) return detail::scale_avx512(a, s, o, n);
  if (tier == Tier::Avx2) return detail::scale_avx2(a, s, o, n);
#endif
  (void)tier;
  for (std::size_t i = 0; i < n; ++i) o[i] = s * a[i];
}

inline void add_scalar(Tier tier, const double* a, double s, double* o, std::size_t n) {
#if defined(SC_SIMD_X86)
  if (tier == Tier::Avx512) return detail::add_scalar_avx512(a, s, o, n);
  if (tier == Tier::Avx2) return detail::add_scalar_avx2(a, s, o, n);
#endif
  (void)tier;
  for (std::size_t i = 0; i < n; ++i) o[i] = a[i] + s;
}

/// dst[i] += src[i]
inline void accumulate(Tier tier, double* dst, const double* src, std::size_t n) {
#if defined(SC_SIMD_X86)
  if (tier == Tier::Avx512) return detail::accumulate_avx512(dst, src, n);
  if (tier == Tier::Avx2) return detail::accumulate_avx2(dst, src, n);
#elif defined(SC_SIMD_NEON)
  if (tier == Tier::Neon) return detail::accumulate_neon(dst, src, n);
#endif
  (void)tier;
  for (std::size_t i = 0; i < n; ++i) dst[i] += src[i];
}

/// dst[i] -= src[i]
inline void accumulate_neg(Tier tier, double* dst, const double* src, std::size_t n) {
#if defined(SC_SIMD_X86)
  if (tier == Tier::Avx512) return detail::accumulate_neg_avx512(dst, src, n);
  if (tier == Tier::Avx2) return detail::accumulate_neg_avx2(dst, src, n);
#endif
  (void)tier;
  for (std::size_t i = 0; i < n; ++i) dst[i] -= src[i];
}

/// dst[i] += s * src[i] (mul then add — never contracted to FMA)
inline void accumulate_scaled(Tier tier, double* dst, const double* src, double s,
                              std::size_t n) {
#if defined(SC_SIMD_X86)
  if (tier == Tier::Avx512) return detail::accumulate_scaled_avx512(dst, src, s, n);
  if (tier == Tier::Avx2) return detail::accumulate_scaled_avx2(dst, src, s, n);
#endif
  (void)tier;
  for (std::size_t i = 0; i < n; ++i) dst[i] += s * src[i];
}

/// dst[i] += a[i] * b[i] (mul then add — never contracted to FMA)
inline void accumulate_mul(Tier tier, double* dst, const double* a, const double* b,
                           std::size_t n) {
#if defined(SC_SIMD_X86)
  if (tier == Tier::Avx512) return detail::accumulate_mul_avx512(dst, a, b, n);
  if (tier == Tier::Avx2) return detail::accumulate_mul_avx2(dst, a, b, n);
#endif
  (void)tier;
  for (std::size_t i = 0; i < n; ++i) dst[i] += a[i] * b[i];
}

/// Scratch size gemm_nt_rows needs for its packed tile.
inline std::size_t gemm_nt_scratch_doubles(std::size_t m) {
  return m * detail::kNtTile;
}

}  // namespace sc::nn::simd
