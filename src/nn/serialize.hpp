// Model checkpointing: saves/loads a module's parameter list to a text file
// (shape-checked on load, full double precision), plus the hex-exact double
// encoding shared with the trainer-state checkpoint format.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "nn/tensor.hpp"

namespace sc::nn {

/// Text parameter format ("scparams"). Finite values only: libstdc++'s
/// operator>> cannot parse "inf"/"nan" back, so save_parameters refuses
/// non-finite values with a diagnostic naming the offending tensor instead of
/// writing a checkpoint that load_parameters would later reject as truncated.
void save_parameters(std::ostream& os, const std::vector<Tensor>& params);
void load_parameters(std::istream& is, const std::vector<Tensor>& params);

void save_parameters(const std::string& path, const std::vector<Tensor>& params);
void load_parameters(const std::string& path, const std::vector<Tensor>& params);

/// Copies parameter values from src to dst (shapes must match). Used for
/// curriculum fine-tuning (warm start from a smaller level's checkpoint).
void copy_parameters(const std::vector<Tensor>& src, const std::vector<Tensor>& dst);

/// Hex-exact double encoding: the IEEE-754 bit pattern as 16 lowercase hex
/// digits. Round-trips every value bit-perfectly — ±inf, nan payloads, -0.0,
/// denormals, DBL_MAX — unlike decimal text. Used by the trainer-state
/// checkpoint format (rl/trainer_state.hpp).
std::string double_to_hex(double v);

/// Parses a 16-hex-digit token produced by double_to_hex. Throws sc::Error on
/// malformed input.
double double_from_hex(const std::string& hex);

}  // namespace sc::nn
