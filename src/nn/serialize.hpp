// Model checkpointing: saves/loads a module's parameter list to a text file
// (shape-checked on load, full double precision).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "nn/tensor.hpp"

namespace sc::nn {

void save_parameters(std::ostream& os, const std::vector<Tensor>& params);
void load_parameters(std::istream& is, const std::vector<Tensor>& params);

void save_parameters(const std::string& path, const std::vector<Tensor>& params);
void load_parameters(const std::string& path, const std::vector<Tensor>& params);

/// Copies parameter values from src to dst (shapes must match). Used for
/// curriculum fine-tuning (warm start from a smaller level's checkpoint).
void copy_parameters(const std::vector<Tensor>& src, const std::vector<Tensor>& dst);

}  // namespace sc::nn
