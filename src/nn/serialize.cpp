#include "nn/serialize.hpp"

#include <bit>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>

#include "common/error.hpp"

namespace sc::nn {

void save_parameters(std::ostream& os, const std::vector<Tensor>& params) {
  // Refuse non-finite values up front: the text format cannot represent them
  // readably (operator>> rejects "inf"/"nan"), and a diverged model should
  // fail loudly here rather than produce a checkpoint that later loads fail
  // on with a misleading "truncated" error.
  for (std::size_t t = 0; t < params.size(); ++t) {
    const Tensor& p = params[t];
    for (std::size_t i = 0; i < p.size(); ++i) {
      SC_CHECK(std::isfinite(p.value()[i]),
               "cannot save non-finite value " << p.value()[i] << " at element " << i
                                               << " of tensor " << t << " (size " << p.size()
                                               << ") — model has diverged");
    }
  }
  os << "scparams " << params.size() << '\n' << std::setprecision(17);
  for (const Tensor& p : params) {
    os << p.dim();
    for (const std::size_t d : p.shape()) os << ' ' << d;
    os << '\n';
    for (std::size_t i = 0; i < p.size(); ++i) {
      os << p.value()[i] << (i + 1 == p.size() ? '\n' : ' ');
    }
  }
  SC_CHECK(os.good(), "parameter write failed");
}

void load_parameters(std::istream& is, const std::vector<Tensor>& params) {
  std::string magic;
  std::size_t count = 0;
  is >> magic >> count;
  SC_CHECK(magic == "scparams", "not a parameter file");
  SC_CHECK(count == params.size(),
           "checkpoint has " << count << " tensors, model expects " << params.size());
  for (const Tensor& p : params) {
    std::size_t dims = 0;
    is >> dims;
    SC_CHECK(dims == p.dim(), "tensor rank mismatch in checkpoint");
    std::vector<std::size_t> shape(dims);
    for (auto& d : shape) is >> d;
    SC_CHECK(shape == p.shape(), "tensor shape mismatch in checkpoint");
    auto& value = const_cast<Tensor&>(p).value();
    for (double& x : value) is >> x;
    SC_CHECK(static_cast<bool>(is), "truncated parameter file");
  }
}

void save_parameters(const std::string& path, const std::vector<Tensor>& params) {
  std::ofstream os(path);
  SC_CHECK(os.good(), "cannot open '" << path << "' for writing");
  save_parameters(os, params);
  os.flush();
  SC_CHECK(os.good(), "write to '" << path << "' failed (disk full or I/O error?)");
}

void load_parameters(const std::string& path, const std::vector<Tensor>& params) {
  std::ifstream is(path);
  SC_CHECK(is.good(), "cannot open '" << path << "' for reading");
  load_parameters(is, params);
}

void copy_parameters(const std::vector<Tensor>& src, const std::vector<Tensor>& dst) {
  SC_CHECK(src.size() == dst.size(), "parameter list size mismatch");
  for (std::size_t i = 0; i < src.size(); ++i) {
    SC_CHECK(src[i].shape() == dst[i].shape(), "parameter shape mismatch at index " << i);
    const_cast<Tensor&>(dst[i]).value() = src[i].value();
  }
}

std::string double_to_hex(double v) {
  static const char* digits = "0123456789abcdef";
  std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[bits & 0xF];
    bits >>= 4;
  }
  return out;
}

double double_from_hex(const std::string& hex) {
  SC_CHECK(hex.size() == 16, "hex double must be 16 digits, got '" << hex << "'");
  std::uint64_t bits = 0;
  for (const char c : hex) {
    std::uint64_t nibble = 0;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<std::uint64_t>(c - 'a') + 10;
    } else if (c >= 'A' && c <= 'F') {
      nibble = static_cast<std::uint64_t>(c - 'A') + 10;
    } else {
      SC_CHECK(false, "invalid hex double token '" << hex << "'");
    }
    bits = (bits << 4) | nibble;
  }
  return std::bit_cast<double>(bits);
}

}  // namespace sc::nn
