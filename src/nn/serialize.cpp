#include "nn/serialize.hpp"

#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>

#include "common/error.hpp"

namespace sc::nn {

void save_parameters(std::ostream& os, const std::vector<Tensor>& params) {
  os << "scparams " << params.size() << '\n' << std::setprecision(17);
  for (const Tensor& p : params) {
    os << p.dim();
    for (const std::size_t d : p.shape()) os << ' ' << d;
    os << '\n';
    for (std::size_t i = 0; i < p.size(); ++i) {
      os << p.value()[i] << (i + 1 == p.size() ? '\n' : ' ');
    }
  }
  SC_CHECK(os.good(), "parameter write failed");
}

void load_parameters(std::istream& is, const std::vector<Tensor>& params) {
  std::string magic;
  std::size_t count = 0;
  is >> magic >> count;
  SC_CHECK(magic == "scparams", "not a parameter file");
  SC_CHECK(count == params.size(),
           "checkpoint has " << count << " tensors, model expects " << params.size());
  for (const Tensor& p : params) {
    std::size_t dims = 0;
    is >> dims;
    SC_CHECK(dims == p.dim(), "tensor rank mismatch in checkpoint");
    std::vector<std::size_t> shape(dims);
    for (auto& d : shape) is >> d;
    SC_CHECK(shape == p.shape(), "tensor shape mismatch in checkpoint");
    auto& value = const_cast<Tensor&>(p).value();
    for (double& x : value) is >> x;
    SC_CHECK(static_cast<bool>(is), "truncated parameter file");
  }
}

void save_parameters(const std::string& path, const std::vector<Tensor>& params) {
  std::ofstream os(path);
  SC_CHECK(os.good(), "cannot open '" << path << "' for writing");
  save_parameters(os, params);
}

void load_parameters(const std::string& path, const std::vector<Tensor>& params) {
  std::ifstream is(path);
  SC_CHECK(is.good(), "cannot open '" << path << "' for reading");
  load_parameters(is, params);
}

void copy_parameters(const std::vector<Tensor>& src, const std::vector<Tensor>& dst) {
  SC_CHECK(src.size() == dst.size(), "parameter list size mismatch");
  for (std::size_t i = 0; i < src.size(); ++i) {
    SC_CHECK(src[i].shape() == dst[i].shape(), "parameter shape mismatch at index " << i);
    const_cast<Tensor&>(dst[i]).value() = src[i].value();
  }
}

}  // namespace sc::nn
