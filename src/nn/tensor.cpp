#include "nn/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>
#include <unordered_set>

#include "nn/arena.hpp"

namespace sc::nn {

namespace detail {

namespace {
thread_local bool g_grad_enabled = true;
}  // namespace

bool grad_enabled() { return g_grad_enabled; }
void set_grad_enabled(bool enabled) { g_grad_enabled = enabled; }

}  // namespace detail

std::size_t shape_size(const std::vector<std::size_t>& shape) {
  std::size_t n = 1;
  for (const std::size_t d : shape) n *= d;
  return n;
}

Tensor Tensor::zeros(std::vector<std::size_t> shape, bool requires_grad) {
  return full(std::move(shape), 0.0, requires_grad);
}

Tensor Tensor::full(std::vector<std::size_t> shape, double fill, bool requires_grad) {
  SC_CHECK(!shape.empty() && shape.size() <= 2, "tensors are 1-D or 2-D");
  auto d = detail::alloc_tensor_data();
  d->value.assign(shape_size(shape), fill);
  d->shape = std::move(shape);
  d->requires_grad = requires_grad;
  return wrap(std::move(d));
}

Tensor Tensor::from(std::vector<double> values, std::vector<std::size_t> shape,
                    bool requires_grad) {
  SC_CHECK(!shape.empty() && shape.size() <= 2, "tensors are 1-D or 2-D");
  SC_CHECK(values.size() == shape_size(shape),
           "value count " << values.size() << " does not match shape");
  auto d = detail::alloc_tensor_data();
  d->shape = std::move(shape);
  d->value = std::move(values);
  d->requires_grad = requires_grad;
  return wrap(std::move(d));
}

Tensor Tensor::scalar(double v, bool requires_grad) {
  return from({v}, {1}, requires_grad);
}

Tensor Tensor::randn(std::vector<std::size_t> shape, Rng& rng, double stddev,
                     bool requires_grad) {
  Tensor t = zeros(std::move(shape), requires_grad);
  for (double& x : t.value()) x = rng.normal(0.0, stddev);
  return t;
}

Tensor Tensor::xavier(std::size_t rows, std::size_t cols, Rng& rng, bool requires_grad) {
  Tensor t = zeros({rows, cols}, requires_grad);
  const double bound = std::sqrt(6.0 / static_cast<double>(rows + cols));
  for (double& x : t.value()) x = rng.uniform(-bound, bound);
  return t;
}

std::size_t Tensor::rows() const {
  const auto& s = data().shape;
  return s[0];
}

std::size_t Tensor::cols() const {
  const auto& s = data().shape;
  SC_CHECK(s.size() == 2, "cols() requires a 2-D tensor");
  return s[1];
}

std::vector<double>& Tensor::grad() {
  data().ensure_grad();
  return data().grad;
}

const std::vector<double>& Tensor::grad() const {
  auto& d = const_cast<detail::TensorData&>(data());
  d.ensure_grad();
  return d.grad;
}

double Tensor::item() const {
  SC_CHECK(size() == 1, "item() requires a scalar tensor, got size " << size());
  return data().value[0];
}

double Tensor::at(std::size_t r, std::size_t c) const {
  SC_CHECK(dim() == 2, "at(r, c) requires a 2-D tensor");
  return data().value.at(r * cols() + c);
}

void Tensor::zero_grad() {
  auto& d = data();
  d.grad.assign(d.value.size(), 0.0);
}

void Tensor::backward() {
  SC_CHECK(size() == 1, "backward() must start from a scalar loss");

  // Topological order via iterative post-order DFS.
  std::vector<detail::TensorData*> order;
  std::unordered_set<detail::TensorData*> visited;
  std::vector<std::pair<detail::TensorData*, std::size_t>> stack;
  stack.emplace_back(&data(), 0);
  visited.insert(&data());
  while (!stack.empty()) {
    auto& [node, idx] = stack.back();
    if (idx < node->inputs.size()) {
      detail::TensorData* next = node->inputs[idx].get();
      ++idx;
      if (visited.insert(next).second) stack.emplace_back(next, 0);
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }

  data().ensure_grad();
  data().grad[0] = 1.0;

  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    detail::TensorData* node = *it;
    if (node->backward_fn) node->backward_fn();
  }

  // Release the recorded graph (keeps leaf gradients).
  for (detail::TensorData* node : order) {
    node->backward_fn = nullptr;
    node->inputs.clear();
  }
}

void check_finite(const Tensor& t, const std::string& name) {
  SC_CHECK(t.defined(), "tensor '" << name << "' is undefined");
  const std::vector<double>& v = t.value();
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (!std::isfinite(v[i])) {
      std::ostringstream shape;
      for (std::size_t d = 0; d < t.shape().size(); ++d) {
        shape << (d ? "x" : "") << t.shape()[d];
      }
      SC_CHECK(false, "tensor invariant: all values finite — tensor '"
                          << name << "' (shape " << shape.str() << ") has non-finite value "
                          << v[i] << " at element " << i);
    }
  }
}

void check_finite_all(const std::vector<Tensor>& params, const std::string& owner) {
  for (std::size_t i = 0; i < params.size(); ++i) {
    std::ostringstream name;
    name << owner << ".param[" << i << ']';
    check_finite(params[i], name.str());
  }
}

}  // namespace sc::nn
