// Neural-network modules: parameter containers built on nn::Tensor.
//
// A Module exposes its learnable tensors through parameters(); optimizers
// and the serializer operate on that flat list, so composition is by
// concatenation (see params_of below).
#pragma once

#include <string>
#include <vector>

#include "nn/ops.hpp"
#include "nn/tensor.hpp"

namespace sc::nn {

class Module {
public:
  virtual ~Module() = default;
  /// All learnable tensors, in a stable order.
  virtual std::vector<Tensor> parameters() const = 0;

  /// Total number of learnable scalars.
  std::size_t num_parameters() const {
    std::size_t n = 0;
    for (const Tensor& p : parameters()) n += p.size();
    return n;
  }
};

/// Fully connected layer: y = x @ W + b, x is (n, in), W is (in, out).
class Linear : public Module {
public:
  Linear() = default;
  Linear(std::size_t in, std::size_t out, Rng& rng, bool bias = true);

  Tensor forward(const Tensor& x) const;
  /// tanh(forward(x)) through the fused linear_tanh kernel (bit-identical to
  /// tanh_op(forward(x)); see nn::linear_tanh).
  Tensor forward_tanh(const Tensor& x) const;
  std::vector<Tensor> parameters() const override;

  std::size_t in_features() const { return weight_.defined() ? weight_.rows() : 0; }
  std::size_t out_features() const { return weight_.defined() ? weight_.cols() : 0; }

private:
  Tensor weight_;
  Tensor bias_;
};

enum class Activation { Tanh, ReLU, Sigmoid, Identity };

Tensor apply_activation(const Tensor& x, Activation act);

/// Multi-layer perceptron with a fixed activation on hidden layers
/// (output layer is linear).
class Mlp : public Module {
public:
  Mlp() = default;
  /// dims = {in, h1, ..., out}; at least {in, out}.
  Mlp(const std::vector<std::size_t>& dims, Rng& rng,
      Activation hidden_act = Activation::Tanh);

  Tensor forward(const Tensor& x) const;
  std::vector<Tensor> parameters() const override;

private:
  std::vector<Linear> layers_;
  Activation act_ = Activation::Tanh;
};

/// Single LSTM cell; state is carried explicitly by the caller.
class LstmCell : public Module {
public:
  LstmCell() = default;
  LstmCell(std::size_t input, std::size_t hidden, Rng& rng);

  struct State {
    Tensor h;  ///< (1, hidden)
    Tensor c;  ///< (1, hidden)
  };
  State initial_state() const;

  /// x is (1, input); returns the next state.
  State forward(const Tensor& x, const State& s) const;
  std::vector<Tensor> parameters() const override;

  std::size_t hidden_size() const { return hidden_; }

private:
  std::size_t hidden_ = 0;
  Linear input_map_;   // input  -> 4*hidden (i, f, g, o)
  Linear hidden_map_;  // hidden -> 4*hidden
};

/// Lookup table of `count` rows of dimension `dim`.
class Embedding : public Module {
public:
  Embedding() = default;
  Embedding(std::size_t count, std::size_t dim, Rng& rng);

  /// Returns rows for the given indices: (indices.size(), dim).
  Tensor forward(const std::vector<std::size_t>& indices) const;
  std::vector<Tensor> parameters() const override;

private:
  Tensor table_;
};

/// Concatenates the parameter lists of several modules.
std::vector<Tensor> params_of(std::initializer_list<const Module*> modules);

}  // namespace sc::nn
