// Tensor arena: a per-thread recycling workspace for autograd nodes.
//
// Every tensor op allocates a TensorData (shape + value + grad + tape
// bookkeeping). During training the same forward/backward structure is
// rebuilt every update, so the steady state is "allocate N buffers, free N
// buffers" per step — pure allocator churn. When the arena is enabled,
// released nodes are parked on a per-thread free list with their vector
// capacities intact; the next op on that thread pops a node and re-sizes it
// in place (an `assign` into existing capacity performs no heap allocation).
// After a warm-up update, the policy forward+backward path runs out of the
// recycled flat buffers instead of the heap.
//
// Numerics are untouched: recycled nodes are fully reset (grad cleared, tape
// links dropped) before reuse, so arena on/off is bit-identical — the toggle
// exists for A/B measurement, mirroring `kernels::set_blocked`.
//
// Thread-safety: each thread owns its free list; a node released on a
// different thread than the one that allocated it simply parks on the
// releasing thread's list. Per-thread lists are capped (node count and
// bytes) so pathological workloads degrade to plain heap behaviour.
//
// Lock discipline (DESIGN.md §10): mutex-free by construction — the free
// lists are thread_local (never shared), and the stats counters are relaxed
// atomics. No capability annotations apply; the thread-ownership invariant
// is covered by the TSan job, not the static analysis.
#pragma once

#include <cstdint>
#include <memory>

namespace sc::nn {

namespace detail {
struct TensorData;

/// Allocates a TensorData: from the calling thread's free list when the
/// arena is enabled (heap when empty), plain make_shared otherwise. The
/// returned node is always fully reset.
std::shared_ptr<TensorData> alloc_tensor_data();
}  // namespace detail

namespace arena {

struct ArenaStats {
  std::uint64_t acquires = 0;      ///< nodes handed out while enabled
  std::uint64_t reuses = 0;        ///< of those, served from a free list
  std::uint64_t fresh_allocs = 0;  ///< of those, heap-allocated (cold pool)
  std::uint64_t pooled_nodes = 0;  ///< nodes currently parked, all threads
  std::uint64_t pooled_bytes = 0;  ///< value+grad capacity bytes parked
  std::uint64_t high_water_bytes = 0;  ///< max pooled_bytes ever observed
};

/// Toggles arena recycling (returns the previous setting). Default: enabled.
bool set_enabled(bool enabled);
bool enabled();

/// Process-wide counters (relaxed atomics; approximate under concurrency).
ArenaStats stats();
void reset_stats();

/// Frees the calling thread's parked nodes (tests / memory pressure).
void trim_thread_pool();

}  // namespace arena
}  // namespace sc::nn
