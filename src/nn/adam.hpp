// Adam optimizer (Kingma & Ba) with optional global-norm gradient clipping —
// the paper trains all models with Adam at lr 1e-3.
#pragma once

#include <vector>

#include "nn/tensor.hpp"

namespace sc::nn {

struct AdamConfig {
  double lr = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
  double clip_norm = 5.0;  ///< 0 disables clipping
};

/// Full optimizer state for checkpointing: first/second moments per
/// parameter tensor plus the step counter. Restoring this (together with the
/// parameter values and RNG streams) resumes training bit-identically.
struct AdamState {
  std::vector<std::vector<double>> m;
  std::vector<std::vector<double>> v;
  long t = 0;
};

class Adam {
public:
  explicit Adam(std::vector<Tensor> params, AdamConfig cfg = {});

  /// Applies one update from the accumulated gradients, then zeroes them.
  void step();

  /// Zeroes gradients without updating.
  void zero_grad();

  /// Current global gradient L2 norm (diagnostic).
  double grad_norm() const;

  const AdamConfig& config() const { return cfg_; }
  void set_lr(double lr) { cfg_.lr = lr; }

  /// Snapshot of m/v/t for checkpointing.
  AdamState export_state() const;

  /// Restores a snapshot; shapes must match this optimizer's parameters.
  void import_state(const AdamState& state);

private:
  std::vector<Tensor> params_;
  AdamConfig cfg_;
  std::vector<std::vector<double>> m_;
  std::vector<std::vector<double>> v_;
  long t_ = 0;
};

}  // namespace sc::nn
