#include "nn/module.hpp"

#include "common/error.hpp"

namespace sc::nn {

// ---- Linear -----------------------------------------------------------------

Linear::Linear(std::size_t in, std::size_t out, Rng& rng, bool bias) {
  SC_CHECK(in > 0 && out > 0, "Linear dims must be positive");
  weight_ = Tensor::xavier(in, out, rng, /*requires_grad=*/true);
  if (bias) bias_ = Tensor::zeros({out}, /*requires_grad=*/true);
}

Tensor Linear::forward(const Tensor& x) const {
  SC_CHECK(weight_.defined(), "Linear used before initialisation");
  Tensor y = matmul(x, weight_);
  if (bias_.defined()) y = add(y, bias_);
  return y;
}

Tensor Linear::forward_tanh(const Tensor& x) const {
  SC_CHECK(weight_.defined(), "Linear used before initialisation");
  return linear_tanh(x, weight_, bias_);
}

std::vector<Tensor> Linear::parameters() const {
  std::vector<Tensor> ps;
  if (weight_.defined()) ps.push_back(weight_);
  if (bias_.defined()) ps.push_back(bias_);
  return ps;
}

// ---- Mlp --------------------------------------------------------------------

Tensor apply_activation(const Tensor& x, Activation act) {
  switch (act) {
    case Activation::Tanh: return tanh_op(x);
    case Activation::ReLU: return relu(x);
    case Activation::Sigmoid: return sigmoid(x);
    case Activation::Identity: return x;
  }
  return x;
}

Mlp::Mlp(const std::vector<std::size_t>& dims, Rng& rng, Activation hidden_act)
    : act_(hidden_act) {
  SC_CHECK(dims.size() >= 2, "Mlp needs at least input and output dims");
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.emplace_back(dims[i], dims[i + 1], rng);
  }
}

Tensor Mlp::forward(const Tensor& x) const {
  SC_CHECK(!layers_.empty(), "Mlp used before initialisation");
  Tensor h = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (i + 1 < layers_.size() && act_ == Activation::Tanh) {
      h = layers_[i].forward_tanh(h);  // fused GEMM + bias + tanh
    } else {
      h = layers_[i].forward(h);
      if (i + 1 < layers_.size()) h = apply_activation(h, act_);
    }
  }
  return h;
}

std::vector<Tensor> Mlp::parameters() const {
  std::vector<Tensor> ps;
  for (const Linear& l : layers_) {
    for (Tensor& p : l.parameters()) ps.push_back(std::move(p));
  }
  return ps;
}

// ---- LstmCell ----------------------------------------------------------------

LstmCell::LstmCell(std::size_t input, std::size_t hidden, Rng& rng)
    : hidden_(hidden),
      input_map_(input, 4 * hidden, rng, /*bias=*/true),
      hidden_map_(hidden, 4 * hidden, rng, /*bias=*/false) {}

LstmCell::State LstmCell::initial_state() const {
  return State{Tensor::zeros({1, hidden_}), Tensor::zeros({1, hidden_})};
}

LstmCell::State LstmCell::forward(const Tensor& x, const State& s) const {
  SC_CHECK(hidden_ > 0, "LstmCell used before initialisation");
  // gates = x W_x + h W_h + b, laid out as [i | f | g | o].
  Tensor gates = add(input_map_.forward(x), hidden_map_.forward(s.h));

  // Slice the (1, 4H) row into four (1, H) pieces via gather on a reshaped
  // (4, H) view.
  Tensor as_rows = reshape(gates, {4, hidden_});
  Tensor i_gate = sigmoid(gather_rows(as_rows, {0}));
  Tensor f_gate = sigmoid(gather_rows(as_rows, {1}));
  Tensor g_gate = tanh_op(gather_rows(as_rows, {2}));
  Tensor o_gate = sigmoid(gather_rows(as_rows, {3}));

  Tensor c_next = add(mul(f_gate, s.c), mul(i_gate, g_gate));
  Tensor h_next = mul(o_gate, tanh_op(c_next));
  return State{h_next, c_next};
}

std::vector<Tensor> LstmCell::parameters() const {
  std::vector<Tensor> ps = input_map_.parameters();
  for (Tensor& p : hidden_map_.parameters()) ps.push_back(std::move(p));
  return ps;
}

// ---- Embedding -----------------------------------------------------------------

Embedding::Embedding(std::size_t count, std::size_t dim, Rng& rng) {
  SC_CHECK(count > 0 && dim > 0, "Embedding dims must be positive");
  table_ = Tensor::randn({count, dim}, rng, 0.1, /*requires_grad=*/true);
}

Tensor Embedding::forward(const std::vector<std::size_t>& indices) const {
  SC_CHECK(table_.defined(), "Embedding used before initialisation");
  return gather_rows(table_, indices);
}

std::vector<Tensor> Embedding::parameters() const {
  return table_.defined() ? std::vector<Tensor>{table_} : std::vector<Tensor>{};
}

std::vector<Tensor> params_of(std::initializer_list<const Module*> modules) {
  std::vector<Tensor> ps;
  for (const Module* m : modules) {
    for (Tensor& p : m->parameters()) ps.push_back(std::move(p));
  }
  return ps;
}

}  // namespace sc::nn
