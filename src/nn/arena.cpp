#include "nn/arena.hpp"

#include <atomic>
#include <vector>

#include "nn/tensor.hpp"

namespace sc::nn {

namespace {

std::atomic<bool> g_enabled{true};

std::atomic<std::uint64_t> g_acquires{0};
std::atomic<std::uint64_t> g_reuses{0};
std::atomic<std::uint64_t> g_fresh{0};
std::atomic<std::uint64_t> g_pooled_nodes{0};
std::atomic<std::uint64_t> g_pooled_bytes{0};
std::atomic<std::uint64_t> g_high_water_bytes{0};

// Per-thread caps: beyond these, released nodes are deleted instead of
// parked, bounding the arena's footprint on any single thread.
constexpr std::size_t kMaxPooledNodes = 4096;
constexpr std::size_t kMaxPooledBytes = std::size_t{64} << 20;  // 64 MiB

std::uint64_t node_bytes(const detail::TensorData& d) {
  return static_cast<std::uint64_t>(d.value.capacity() + d.grad.capacity()) *
         sizeof(double);
}

/// Thread-local free list; deletes leftovers at thread exit.
struct FreeList {
  std::vector<detail::TensorData*> nodes;
  std::size_t bytes = 0;

  ~FreeList() {
    for (detail::TensorData* p : nodes) {
      g_pooled_nodes.fetch_sub(1, std::memory_order_relaxed);
      g_pooled_bytes.fetch_sub(node_bytes(*p), std::memory_order_relaxed);
      delete p;
    }
  }
};

FreeList& free_list() {
  thread_local FreeList list;
  return list;
}

void update_high_water(std::uint64_t pooled) {
  std::uint64_t hw = g_high_water_bytes.load(std::memory_order_relaxed);
  while (pooled > hw &&
         !g_high_water_bytes.compare_exchange_weak(hw, pooled,
                                                   std::memory_order_relaxed)) {
  }
}

/// Resets tape state and buffers, keeping vector capacities for reuse.
void reset_node(detail::TensorData& d) {
  d.backward_fn = nullptr;
  d.inputs.clear();   // keeps capacity
  d.shape.clear();    // keeps capacity
  d.value.clear();    // keeps capacity
  d.grad.clear();     // keeps capacity; ensure_grad() re-zeros on next use
  d.requires_grad = false;
}

/// shared_ptr deleter that parks the node instead of freeing it.
struct ArenaDeleter {
  void operator()(detail::TensorData* p) const {
    FreeList& list = free_list();
    if (!g_enabled.load(std::memory_order_relaxed) ||
        list.nodes.size() >= kMaxPooledNodes || list.bytes >= kMaxPooledBytes) {
      delete p;
      return;
    }
    reset_node(*p);
    const std::uint64_t bytes = node_bytes(*p);
    list.nodes.push_back(p);
    list.bytes += static_cast<std::size_t>(bytes);
    g_pooled_nodes.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t pooled =
        g_pooled_bytes.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    update_high_water(pooled);
  }
};

}  // namespace

namespace detail {

std::shared_ptr<TensorData> alloc_tensor_data() {
  if (!g_enabled.load(std::memory_order_relaxed)) {
    return std::make_shared<TensorData>();
  }
  g_acquires.fetch_add(1, std::memory_order_relaxed);
  FreeList& list = free_list();
  if (!list.nodes.empty()) {
    TensorData* p = list.nodes.back();
    list.nodes.pop_back();
    const std::uint64_t bytes = node_bytes(*p);
    list.bytes -= static_cast<std::size_t>(bytes);
    g_pooled_nodes.fetch_sub(1, std::memory_order_relaxed);
    g_pooled_bytes.fetch_sub(bytes, std::memory_order_relaxed);
    g_reuses.fetch_add(1, std::memory_order_relaxed);
    return std::shared_ptr<TensorData>(p, ArenaDeleter{});
  }
  g_fresh.fetch_add(1, std::memory_order_relaxed);
  return std::shared_ptr<TensorData>(new TensorData, ArenaDeleter{});
}

}  // namespace detail

namespace arena {

bool set_enabled(bool enabled) {
  return g_enabled.exchange(enabled, std::memory_order_relaxed);
}

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

ArenaStats stats() {
  ArenaStats s;
  s.acquires = g_acquires.load(std::memory_order_relaxed);
  s.reuses = g_reuses.load(std::memory_order_relaxed);
  s.fresh_allocs = g_fresh.load(std::memory_order_relaxed);
  s.pooled_nodes = g_pooled_nodes.load(std::memory_order_relaxed);
  s.pooled_bytes = g_pooled_bytes.load(std::memory_order_relaxed);
  s.high_water_bytes = g_high_water_bytes.load(std::memory_order_relaxed);
  return s;
}

void reset_stats() {
  g_acquires.store(0, std::memory_order_relaxed);
  g_reuses.store(0, std::memory_order_relaxed);
  g_fresh.store(0, std::memory_order_relaxed);
  g_high_water_bytes.store(g_pooled_bytes.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
}

void trim_thread_pool() {
  FreeList& list = free_list();
  for (detail::TensorData* p : list.nodes) {
    g_pooled_nodes.fetch_sub(1, std::memory_order_relaxed);
    g_pooled_bytes.fetch_sub(node_bytes(*p), std::memory_order_relaxed);
    delete p;
  }
  list.nodes.clear();
  list.bytes = 0;
}

}  // namespace arena
}  // namespace sc::nn
