// Differentiable operations over nn::Tensor.
//
// Shapes: 1-D tensors are treated as row vectors where sensible; matmul
// requires 2-D operands. All ops validate shapes and record backward
// closures while gradients are enabled.
#pragma once

#include <vector>

#include "nn/tensor.hpp"

namespace sc::nn {

namespace simd {
enum class Tier : int;  // full definition in nn/simd.hpp
}

// ---- Elementwise ------------------------------------------------------------
Tensor add(Tensor a, Tensor b);        ///< same shape, or b is a bias row
Tensor sub(Tensor a, Tensor b);        ///< same shape
Tensor mul(Tensor a, Tensor b);        ///< elementwise, same shape
Tensor scale(Tensor a, double s);
Tensor add_scalar(Tensor a, double s);
Tensor tanh_op(Tensor a);
Tensor sigmoid(Tensor a);
Tensor relu(Tensor a);
Tensor exp_op(Tensor a);
Tensor log_op(Tensor a);                      ///< requires strictly positive input

// ---- Linear algebra ---------------------------------------------------------
Tensor matmul(Tensor a, Tensor b);     ///< (n,k) x (k,m) -> (n,m)
Tensor matmul_nt(Tensor a, Tensor b);  ///< (n,k) x (m,k)^T -> (n,m)

// ---- Shape / gather ---------------------------------------------------------
/// Concatenates 2-D tensors along columns (same row count).
Tensor concat_cols(std::vector<Tensor> parts);
/// Selects rows of a 2-D tensor: result row i = x[index[i]].
Tensor gather_rows(Tensor x, const std::vector<std::size_t>& index);
/// Scatter-mean of rows into `num_targets` buckets: out[t] = mean of rows i
/// with index[i] == t (zero row if a bucket is empty).
Tensor scatter_mean(Tensor x, const std::vector<std::size_t>& index,
                    std::size_t num_targets);
/// Reshape without copying semantics changes (same element count).
Tensor reshape(Tensor x, std::vector<std::size_t> shape);

// ---- Reductions -------------------------------------------------------------
Tensor sum(Tensor a);   ///< scalar
Tensor mean(Tensor a);  ///< scalar

// ---- Fused probability ops (numerically stable) ------------------------------
/// Per-element Bernoulli log-likelihood of `actions` (0/1) under logits z:
///   logp = action ? -softplus(-z) : -softplus(z)
Tensor bernoulli_log_prob(Tensor logits, const std::vector<int>& actions);

/// Row-wise categorical log-likelihood: logits (n,k), actions (n) in [0,k).
Tensor categorical_log_prob(Tensor logits, const std::vector<int>& actions);

/// Per-element entropy of Bernoulli(sigmoid(z)):
///   H(z) = p*softplus(-z) + (1-p)*softplus(z),  dH/dz = -z * p * (1-p).
/// Numerically stable at extreme logits (H -> 0).
Tensor bernoulli_entropy(Tensor logits);

/// Row-wise softmax of a 2-D tensor (forward-only convenience for sampling;
/// differentiable as well).
Tensor softmax_rows(Tensor logits);

// ---- Fused ops --------------------------------------------------------------
// Each fused op computes the same composition of primitive ops in a single
// pass (one result tensor, one backward node) instead of materialising every
// intermediate. Values and gradients are bit-identical to the unfused
// composition: the element-wise arithmetic, the GEMM kernels invoked, and the
// gradient accumulation order are all preserved exactly. `fused::set_enabled
// (false)` routes every entry point through the primitive composition instead
// (A/B benchmarking, like `kernels::set_blocked`).
namespace fused {

/// Toggles the fused paths (returns the previous setting). Default: enabled.
bool set_enabled(bool enabled);
bool enabled();

}  // namespace fused

/// tanh(x @ w + b) in one pass: GEMM + bias + tanh without materialising the
/// pre-activation. `b` may be undefined (no bias term).
Tensor linear_tanh(Tensor x, Tensor w, Tensor b);

/// tanh(base[index] + add_term) in one pass — the edge-message construction
/// of the edge-aware encoder (gather_rows + add + tanh_op). `add_term` may be
/// undefined (plain gather + tanh). add_term must be (index.size(), base.cols()).
Tensor gather_add_tanh(Tensor base, const std::vector<std::size_t>& index,
                       Tensor add_term);

/// The whole REINFORCE policy-gradient loss in one vectorized op:
///
///   out = final_scale * Σ_j coeffs[j] · Σ_i bernoulli_logp(logits[i], masks[j][i])
///
/// replacing the per-episode add(loss, scale(sum(bernoulli_log_prob(...))))
/// chain with a single backward node. masks[j] are 0/1 edge masks of
/// logits.size() entries each; coeffs are the per-episode scalars (e.g.
/// negative advantages).
Tensor masked_logprob_sum(Tensor logits, std::vector<std::vector<int>> masks,
                          std::vector<double> coeffs, double final_scale = 1.0);

// ---- Dense kernels ----------------------------------------------------------
// Row-major GEMM microkernels used by matmul / matmul_nt forward and backward.
// The default entry points dispatch to register-blocked kernels that fan row
// panels out over ThreadPool::global() above a size threshold; results are
// independent of the pool size (each output element is accumulated in a fixed
// order by exactly one thread). set_blocked(false) routes everything through
// the naive scalar loops instead (A/B benchmarking of the blocked path).
namespace kernels {

/// C (n,m) = (or +=) A (n,k) · B (k,m).
void gemm_nn(const double* a, const double* b, double* c, std::size_t n, std::size_t k,
             std::size_t m, bool accumulate);
/// C (n,k) += A (n,m) · B (k,m)^T.
void gemm_nt(const double* a, const double* b, double* c, std::size_t n, std::size_t m,
             std::size_t k);
/// C (k,m) += A (n,k)^T · B (n,m).
void gemm_tn(const double* a, const double* b, double* c, std::size_t n, std::size_t k,
             std::size_t m);

/// Reference scalar kernels (same signatures); the blocked kernels must agree
/// with these within 1e-12 per element.
void gemm_nn_naive(const double* a, const double* b, double* c, std::size_t n,
                   std::size_t k, std::size_t m, bool accumulate);
void gemm_nt_naive(const double* a, const double* b, double* c, std::size_t n,
                   std::size_t m, std::size_t k);
void gemm_tn_naive(const double* a, const double* b, double* c, std::size_t n,
                   std::size_t k, std::size_t m);

/// Toggles the blocked + parallel path (returns the previous setting).
bool set_blocked(bool enabled);
bool blocked_enabled();

/// Toggles SIMD dispatch of the blocked kernels and the element-wise tensor
/// loops (returns the previous setting). Off routes everything through the
/// scalar reference tier — the same A/B discipline as set_blocked. The tier
/// actually used is simd::active() (runtime CPUID detection, capped by the
/// SC_SIMD environment variable; see nn/simd.hpp). Default: enabled.
bool set_simd(bool enabled);
bool simd_enabled();

/// Tier the next kernel call will dispatch on: simd::active() when the
/// toggle is on, the scalar reference tier when it is off.
simd::Tier simd_tier();

}  // namespace kernels

}  // namespace sc::nn
