#include "gen/dataset.hpp"

#include <limits>

#include "common/error.hpp"

namespace sc::gen {

namespace {

constexpr double kMips = 1.25e9;          // 1.25e3 MIPS
constexpr double kBw1000Mbps = 1.25e8;    // bytes/s
constexpr double kBw1500Mbps = 1.875e8;   // bytes/s

}  // namespace

const char* setting_name(Setting s) {
  switch (s) {
    case Setting::Small: return "small(4-26,5dev,10K)";
    case Setting::MediumSmallCluster: return "medium(100-200,5dev,5K)";
    case Setting::Medium: return "medium(100-200,10dev,10K)";
    case Setting::Large: return "large(400-500,10dev,10K)";
    case Setting::XLarge: return "xlarge(1000-2000,20dev,10K)";
    case Setting::Excess: return "excess(400-500,10dev,10K,-33%)";
    case Setting::Huge: return "huge(1M-1.1M,64dev,10K)";
  }
  return "?";
}

GeneratorConfig setting_config(Setting s) {
  GeneratorConfig cfg;
  WorkloadConfig& wl = cfg.workload;
  TopologyConfig& top = cfg.topology;
  wl.device_mips = kMips;

  switch (s) {
    case Setting::Small:
      top.min_nodes = 4;
      top.max_nodes = 26;
      wl.source_rate = 1e4;
      wl.num_devices = 5;
      wl.bandwidth = kBw1000Mbps;
      break;
    case Setting::MediumSmallCluster:
      top.min_nodes = 100;
      top.max_nodes = 200;
      wl.source_rate = 5e3;
      wl.num_devices = 5;
      wl.bandwidth = kBw1000Mbps;
      break;
    case Setting::Medium:
      top.min_nodes = 100;
      top.max_nodes = 200;
      wl.source_rate = 1e4;
      wl.num_devices = 10;
      wl.bandwidth = kBw1000Mbps;
      break;
    case Setting::Large:
      top.min_nodes = 400;
      top.max_nodes = 500;
      wl.source_rate = 1e4;
      wl.num_devices = 10;
      wl.bandwidth = kBw1500Mbps;
      break;
    case Setting::XLarge:
      top.min_nodes = 1000;
      top.max_nodes = 2000;
      wl.source_rate = 1e4;
      wl.num_devices = 20;
      wl.bandwidth = kBw1500Mbps;
      break;
    case Setting::Excess:
      // Same topologies as Large but the graphs demand 33% less CPU and the
      // links offer 33% less bandwidth: optimal allocations use a device subset.
      top.min_nodes = 400;
      top.max_nodes = 500;
      wl.source_rate = 1e4;
      wl.num_devices = 10;
      wl.bandwidth = kBw1500Mbps * 0.67;
      wl.cpu_frac_lo = 0.55 * 0.67;
      wl.cpu_frac_hi = 0.85 * 0.67;
      break;
    case Setting::Huge:
      // Streaming/out-of-core tier (DESIGN.md §9): 1M+ nodes via tiled
      // composition — the frontier grammar alone is quadratic at this scale.
      top.min_nodes = 1'000'000;
      top.max_nodes = 1'100'000;
      top.tile_nodes = 160;
      top.max_parallel_tiles = 4;
      // Broadcast forks multiply the propagated rate by the fan-out; across
      // thousands of tiled stages the product overflows to inf. Split-only
      // forks conserve rate mass exactly (each fork divides its rate over
      // its out-edges), keeping every propagated rate <= 1 at any depth.
      top.broadcast_prob = 0.0;
      wl.source_rate = 1e4;
      wl.num_devices = 64;
      wl.bandwidth = kBw1500Mbps;
      break;
  }
  check_topology_bounds(cfg.topology);
  return cfg;
}

Dataset make_dataset(Setting s, std::size_t train_count, std::size_t test_count,
                     std::uint64_t seed) {
  return make_dataset(s, setting_config(s), train_count, test_count, seed);
}

Dataset make_dataset(Setting s, const GeneratorConfig& cfg, std::size_t train_count,
                     std::size_t test_count, std::uint64_t seed) {
  SC_CHECK(train_count <= std::numeric_limits<std::size_t>::max() - test_count,
           "dataset sizing overflows: " << train_count << " + " << test_count);
  SC_CHECK(train_count + test_count > 0, "dataset must contain at least one graph");
  // Re-validate the (possibly caller-adjusted) config before generating:
  // an absurd node budget must fail here, not wrap inside the generator.
  check_topology_bounds(cfg.topology);
  Dataset ds;
  ds.setting = s;
  ds.config = cfg;
  auto graphs = generate_graphs(cfg, train_count + test_count, seed,
                                std::string(setting_name(s)) + "/");
  ds.train.assign(std::make_move_iterator(graphs.begin()),
                  std::make_move_iterator(graphs.begin() + static_cast<long>(train_count)));
  ds.test.assign(std::make_move_iterator(graphs.begin() + static_cast<long>(train_count)),
                 std::make_move_iterator(graphs.end()));
  return ds;
}

}  // namespace sc::gen
