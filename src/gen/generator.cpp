#include "gen/generator.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>

#include "common/error.hpp"
#include "graph/rates.hpp"

namespace sc::gen {

namespace {

using graph::NodeId;

/// Mutable graph under construction. Edges are endpoint pairs; adjacency is
/// recomputed only where the expansion steps need it.
struct Draft {
  struct DraftNode {
    std::size_t replica_group;  ///< nodes in the same group share features
    bool expandable;
  };
  struct DraftEdge {
    NodeId src;
    NodeId dst;
  };

  std::vector<DraftNode> nodes;
  std::vector<DraftEdge> edges;
  std::vector<NodeId> frontier;  ///< expandable node ids
  std::size_t next_group = 0;

  NodeId add_node(bool expandable) {
    nodes.push_back(DraftNode{next_group++, expandable});
    const NodeId id = graph::checked_node_id(nodes.size() - 1);
    if (expandable) frontier.push_back(id);
    return id;
  }

  void add_edge(NodeId src, NodeId dst) { edges.push_back(DraftEdge{src, dst}); }

  /// Moves all out-edges of `from` to originate at `to`.
  void move_out_edges(NodeId from, NodeId to) {
    for (DraftEdge& e : edges) {
      if (e.src == from) e.src = to;
    }
  }
};

/// Removes `v` from the frontier (it has just been expanded).
void retire(Draft& d, NodeId v) {
  auto& f = d.frontier;
  f.erase(std::remove(f.begin(), f.end(), v), f.end());
  d.nodes[v].expandable = false;
}

void expand_linear(Draft& d, NodeId v, std::size_t len) {
  // v stays as the chain head; the chain tail inherits v's out-edges.
  if (len <= 1) return;
  std::vector<std::size_t> moved;
  for (std::size_t i = 0; i < d.edges.size(); ++i) {
    if (d.edges[i].src == v) moved.push_back(i);
  }
  NodeId prev = v;
  for (std::size_t i = 1; i < len; ++i) {
    const NodeId cur = d.add_node(true);
    d.add_edge(prev, cur);
    prev = cur;
  }
  for (const std::size_t idx : moved) d.edges[idx].src = prev;
}

void expand_branch(Draft& d, NodeId v, std::size_t width) {
  // v forks into `width` parallel nodes that join at a new exit node,
  // which inherits v's out-edges.
  const NodeId exit = d.add_node(true);
  d.move_out_edges(v, exit);
  for (std::size_t i = 0; i < width; ++i) {
    const NodeId mid = d.add_node(true);
    d.add_edge(v, mid);
    d.add_edge(mid, exit);
  }
}

void expand_full(Draft& d, NodeId v, const std::vector<std::size_t>& layer_widths) {
  // v feeds every node of layer 0; consecutive layers are fully connected;
  // the last layer joins at a new exit that inherits v's out-edges.
  const NodeId exit = d.add_node(true);
  d.move_out_edges(v, exit);
  std::vector<NodeId> prev_layer{v};
  for (const std::size_t w : layer_widths) {
    std::vector<NodeId> layer;
    layer.reserve(w);
    for (std::size_t i = 0; i < w; ++i) layer.push_back(d.add_node(true));
    for (const NodeId p : prev_layer) {
      for (const NodeId q : layer) d.add_edge(p, q);
    }
    prev_layer = std::move(layer);
  }
  for (const NodeId p : prev_layer) d.add_edge(p, exit);
}

/// Replicates node v in place k-1 additional times: each replica copies v's
/// in/out edges and joins v's replica feature group.
void replicate_node(Draft& d, NodeId v, std::size_t copies) {
  const std::vector<Draft::DraftEdge> snapshot = d.edges;
  for (std::size_t c = 1; c < copies; ++c) {
    const NodeId r = d.add_node(true);
    d.nodes[r].replica_group = d.nodes[v].replica_group;
    for (const auto& e : snapshot) {
      if (e.src == v) d.add_edge(r, e.dst);
      if (e.dst == v) d.add_edge(e.src, r);
    }
  }
}

/// Seeds a draft with the source -> op -> sink chain. Source and sink are
/// never expanded, so grown drafts keep a single tuple source and sink.
void seed_draft(Draft& d) {
  const NodeId src = d.add_node(false);
  const NodeId mid = d.add_node(true);
  const NodeId snk = d.add_node(false);
  d.add_edge(src, mid);
  d.add_edge(mid, snk);
}

/// Grows `d` by frontier expansion (the paper's Fig. 4 grammar) until the
/// draft reaches `target` nodes or the frontier is exhausted.
void grow_draft(Draft& d, const TopologyConfig& top, Rng& rng, std::size_t target) {
  while (d.nodes.size() < target && !d.frontier.empty()) {
    const NodeId v = d.frontier[rng.index(d.frontier.size())];
    const std::size_t budget = target - d.nodes.size();

    if (rng.bernoulli(top.replicate_prob) && budget >= 1) {
      const std::size_t copies = std::min<std::size_t>(
          1 + rng.index(top.max_replicas), budget + 1);
      if (copies >= 2) {
        replicate_node(d, v, copies);
        retire(d, v);
        continue;
      }
    }

    const std::size_t kind =
        rng.weighted_index({top.p_linear, top.p_branch, top.p_full});
    switch (kind) {
      case 0: {  // linear: adds len-1 nodes
        const std::size_t len = std::min<std::size_t>(
            2 + rng.index(std::max<std::size_t>(1, top.max_linear_len - 1)),
            budget + 1);
        expand_linear(d, v, len);
        break;
      }
      case 1: {  // branch: adds width+1 nodes
        std::size_t width = 2 + rng.index(std::max<std::size_t>(1, top.max_branch_width - 1));
        width = std::min(width, budget > 1 ? budget - 1 : std::size_t{1});
        if (width < 2) {
          expand_linear(d, v, std::min<std::size_t>(2, budget + 1));
        } else {
          expand_branch(d, v, width);
        }
        break;
      }
      default: {  // fully connected: adds sum(widths)+1 nodes
        const std::size_t layers = 1 + rng.index(top.max_full_layers);
        std::vector<std::size_t> widths;
        std::size_t total = 1;  // exit node
        for (std::size_t l = 0; l < layers; ++l) {
          const std::size_t w = 2 + rng.index(std::max<std::size_t>(1, top.max_full_width - 1));
          if (total + w > budget) break;
          widths.push_back(w);
          total += w;
        }
        if (widths.empty()) {
          expand_linear(d, v, std::min<std::size_t>(2, budget + 1));
        } else {
          expand_full(d, v, widths);
        }
        break;
      }
    }
    retire(d, v);
  }
}

/// Appends `tile` into `d`, offsetting node ids and replica groups; returns
/// the tile's (source, sink) pair in `d`'s id space. Appended nodes are
/// sealed (non-expandable): tiles grow in isolation, never after stitching.
std::pair<NodeId, NodeId> append_tile(Draft& d, const Draft& tile) {
  const std::size_t node_off = d.nodes.size();
  const std::size_t group_off = d.next_group;
  for (const auto& tn : tile.nodes) {
    d.nodes.push_back(Draft::DraftNode{group_off + tn.replica_group, false});
  }
  d.next_group = group_off + tile.next_group;
  for (const auto& e : tile.edges) {
    d.add_edge(graph::checked_node_id(node_off + e.src),
               graph::checked_node_id(node_off + e.dst));
  }
  // Seed order within a tile: node 0 is the source, node 2 the sink.
  return {graph::checked_node_id(node_off), graph::checked_node_id(node_off + 2)};
}

/// Tiled composition (DESIGN.md §9): sequential stages of 1..max_parallel_tiles
/// parallel lanes, each lane an independently grown ~tile_nodes sub-graph,
/// joined by junction nodes. Exactly `target` nodes, one source, one sink.
Draft build_tiled_draft(const TopologyConfig& top, Rng& rng, std::size_t target) {
  Draft d;
  const NodeId source = d.add_node(false);
  NodeId junction = source;
  const std::size_t tile = std::max<std::size_t>(3, top.tile_nodes);
  const std::size_t max_width = std::max<std::size_t>(1, top.max_parallel_tiles);

  while (d.nodes.size() < target && target - d.nodes.size() >= 4) {
    const std::size_t width = 1 + rng.index(max_width);
    std::vector<NodeId> exits;
    for (std::size_t lane = 0; lane < width; ++lane) {
      const std::size_t budget = target - d.nodes.size();
      if (budget < 4) break;  // must leave room for the stage's join node
      const std::size_t lane_target = std::min(tile, budget - 1);
      Draft t;
      seed_draft(t);
      grow_draft(t, top, rng, lane_target);
      const auto [entry, exit] = append_tile(d, t);
      d.add_edge(junction, entry);
      exits.push_back(exit);
    }
    SC_ASSERT(!exits.empty(), "tiled stage produced no lanes");
    const NodeId join = d.add_node(false);
    for (const NodeId x : exits) d.add_edge(x, join);
    junction = join;
  }
  // Spend any sub-stage remainder as a chain off the last junction, keeping
  // the node count exact and the sink unique.
  while (d.nodes.size() < target) {
    const NodeId next = d.add_node(false);
    d.add_edge(junction, next);
    junction = next;
  }
  return d;
}

/// Upper bound on the generator's node budget: beyond this even the compact
/// CSR arrays leave the 32-bit id space at realistic edge densities.
constexpr std::size_t kMaxTargetNodes = std::size_t{1} << 28;

/// Conservative expected edge count for a grammar-grown topology: a
/// fully-connected expansion adds up to max_full_width in-edges per added
/// node, each replica copies its template's (typically O(1)) degree, and
/// fork/join structures add a constant. Pathological replica chains can
/// exceed this estimate; GraphBuilder's checked edge ids are the hard
/// backstop — this bound exists to reject absurd *configs* loudly before
/// generation begins.
std::uint64_t expected_edge_bound(const TopologyConfig& top) {
  const std::uint64_t per_node =
      static_cast<std::uint64_t>(top.max_full_width) +
      2 * static_cast<std::uint64_t>(top.max_replicas) + 4;
  return static_cast<std::uint64_t>(top.max_nodes) * per_node;  // widened before *
}

}  // namespace

/// Validates a topology config against the generator's accumulator widths;
/// shared by generate_graph and dataset sizing so both fail loudly instead
/// of silently wrapping (satellite: gen overflow hardening).
void check_topology_bounds(const TopologyConfig& top) {
  SC_CHECK(top.min_nodes >= 3, "min_nodes must be at least 3 (source, op, sink)");
  SC_CHECK(top.min_nodes <= top.max_nodes, "min_nodes must not exceed max_nodes");
  SC_CHECK(top.max_nodes <= kMaxTargetNodes,
           "max_nodes " << top.max_nodes << " exceeds the generator's supported scale ("
                        << kMaxTargetNodes << " nodes)");
  const std::uint64_t edge_bound = expected_edge_bound(top);
  SC_CHECK(edge_bound <= static_cast<std::uint64_t>(graph::kInvalidEdge),
           "expected edge count " << edge_bound << " for max_nodes " << top.max_nodes
                                  << " overflows the 32-bit edge-id accumulators");
  SC_CHECK(top.tile_nodes == 0 || top.tile_nodes >= 3,
           "tile_nodes must be 0 (disabled) or at least 3");
}

graph::StreamGraph generate_graph(const GeneratorConfig& cfg, Rng& rng,
                                  const std::string& name) {
  const TopologyConfig& top = cfg.topology;
  check_topology_bounds(top);
  const double psum = top.p_linear + top.p_branch + top.p_full;
  SC_CHECK(psum > 0.0, "structure probabilities must not all be zero");

  const std::size_t target = static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::int64_t>(top.min_nodes),
                      static_cast<std::int64_t>(top.max_nodes)));

  Draft d;
  if (top.tile_nodes > 0 && target >= 8) {
    d = build_tiled_draft(top, rng, target);
  } else {
    seed_draft(d);
    grow_draft(d, top, rng, target);
  }

  // ---- Feature assignment -------------------------------------------------
  const WorkloadConfig& wl = cfg.workload;
  graph::GraphBuilder b(name);

  // Raw draws; replicas share their group's draw.
  std::unordered_map<std::size_t, double> group_ipt;
  for (const auto& node : d.nodes) {
    auto it = group_ipt.find(node.replica_group);
    double ipt;
    if (it != group_ipt.end()) {
      ipt = it->second;
    } else {
      ipt = std::exp(rng.normal(0.0, wl.ipt_sigma));
      group_ipt.emplace(node.replica_group, ipt);
    }
    double sel = 1.0;
    if (top.selectivity_jitter > 0.0) {
      const int pick = static_cast<int>(rng.index(3));
      sel = 1.0 + (pick - 1) * top.selectivity_jitter;
    }
    b.add_node(ipt, sel);
  }

  // Deduplicate parallel edges produced by replication (payloads merge later
  // anyway; StreamGraph forbids duplicates).
  std::vector<Draft::DraftEdge> unique_edges;
  {
    std::unordered_map<std::uint64_t, bool> seen;
    seen.reserve(d.edges.size() * 2);
    for (const auto& e : d.edges) {
      const std::uint64_t key = graph::pack_edge_key(e.src, e.dst);
      if (!seen.emplace(key, true).second) continue;
      unique_edges.push_back(e);
    }
  }

  // Out-degree for fork-split rate factors.
  std::vector<std::size_t> out_deg(d.nodes.size(), 0);
  for (const auto& e : unique_edges) ++out_deg[e.src];

  // Payload draws keyed by (src replica group, dst replica group) so that
  // replicated sub-graphs carry identical channel properties.
  std::unordered_map<std::uint64_t, double> group_payload;
  for (const auto& e : unique_edges) {
    // Replica groups are bounded by the node count (one new group per
    // add_node), so the checked narrowing below can only fail if add_node's
    // own id check was bypassed.
    const std::uint64_t key =
        graph::pack_edge_key(graph::checked_node_id(d.nodes[e.src].replica_group),
                             graph::checked_node_id(d.nodes[e.dst].replica_group));
    auto it = group_payload.find(key);
    double payload;
    if (it != group_payload.end()) {
      payload = it->second;
    } else {
      payload = std::exp(rng.normal(0.0, wl.payload_sigma));
      group_payload.emplace(key, payload);
    }
    double rate_factor = 1.0;
    const bool broadcast = (top.default_fork == ForkSemantics::Broadcast) ||
                           rng.bernoulli(top.broadcast_prob);
    if (!broadcast && out_deg[e.src] > 1) {
      rate_factor = 1.0 / static_cast<double>(out_deg[e.src]);
    }
    b.add_edge(e.src, e.dst, payload, rate_factor);
  }

  graph::StreamGraph provisional = b.build();

  // ---- Scale to the cluster ----------------------------------------------
  const graph::LoadProfile profile = graph::compute_load_profile(provisional);

  // Rate propagation can overflow on deep topologies whose forks amplify the
  // rate (broadcast multiplies by the fan-out at every stage). Fail loudly
  // here instead of serializing a graph full of inf/NaN features.
  SC_CHECK(std::isfinite(profile.total_cpu) && std::isfinite(profile.total_traffic),
           "rate propagation overflowed on '"
               << name << "' (" << provisional.num_nodes()
               << " nodes): deep topologies need rate-conserving forks "
                  "(broadcast_prob = 0, see TopologyConfig)");

  const double cpu_frac = rng.uniform(wl.cpu_frac_lo, wl.cpu_frac_hi);
  const double target_cpu =
      cpu_frac * static_cast<double>(wl.num_devices) * wl.device_mips;
  const double current_cpu = wl.source_rate * profile.total_cpu;
  const double ipt_scale = current_cpu > 0.0 ? target_cpu / current_cpu : 1.0;

  const double sat = rng.uniform(wl.sat_lo, wl.sat_hi);
  const double target_traffic =
      sat * wl.bandwidth * static_cast<double>(provisional.num_edges());
  const double current_traffic = wl.source_rate * profile.total_traffic;
  const double payload_scale =
      current_traffic > 0.0 ? target_traffic / current_traffic : 1.0;

  graph::GraphBuilder scaled(name);
  for (const graph::Operator& op : provisional.ops()) {
    scaled.add_node(op.ipt * ipt_scale, op.selectivity);
  }
  for (const graph::Channel& c : provisional.edges()) {
    scaled.add_edge(c.src, c.dst, c.payload * payload_scale, c.rate_factor);
  }
  return scaled.build();
}

std::vector<graph::StreamGraph> generate_graphs(const GeneratorConfig& cfg,
                                                std::size_t count, std::uint64_t seed,
                                                const std::string& name_prefix) {
  std::vector<graph::StreamGraph> graphs;
  graphs.reserve(count);
  Rng root(seed);
  for (std::size_t i = 0; i < count; ++i) {
    Rng child = root.split();
    graphs.push_back(generate_graph(cfg, child, name_prefix + std::to_string(i)));
  }
  return graphs;
}

}  // namespace sc::gen
