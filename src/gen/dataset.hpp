// Benchmark dataset settings matching the paper's evaluation (Sec. V).
//
//   Small    4–26 nodes,   5 devices, 10K/s, 1000 Mbps   (sanity check, [9])
//   Medium   100–200,     10 devices, 10K/s, 1000 Mbps   (also a 5K/5dev variant)
//   Large    400–500,     10 devices, 10K/s, 1500 Mbps   (the paper's main setting)
//   XLarge   1000–2000,   20 devices, 10K/s, 1500 Mbps
//   Excess   Large topologies with node CPU demand and bandwidth reduced by 33%
//            (the optimal allocation uses only a subset of the devices)
//   Huge     1M–1.1M,     64 devices, 10K/s, 1500 Mbps — the streaming/
//            out-of-core tier (DESIGN.md §9); topologies use tiled
//            composition (TopologyConfig::tile_nodes) and are meant to be
//            written to disk and ingested via graph::read_csr rather than
//            held as StreamGraphs.
//
// Device capacity is 1.25e3 MIPS (= 1.25e9 instructions/s) throughout.
#pragma once

#include <string>
#include <vector>

#include "gen/generator.hpp"
#include "graph/stream_graph.hpp"

namespace sc::gen {

enum class Setting { Small, MediumSmallCluster, Medium, Large, XLarge, Excess, Huge };

const char* setting_name(Setting s);

/// Full generator + cluster parameterisation of a paper setting.
GeneratorConfig setting_config(Setting s);

/// A generated dataset with train/test split (paper: 300 test graphs).
struct Dataset {
  Setting setting;
  GeneratorConfig config;
  std::vector<graph::StreamGraph> train;
  std::vector<graph::StreamGraph> test;
};

/// Generates `train_count` + `test_count` graphs for the setting.
Dataset make_dataset(Setting s, std::size_t train_count, std::size_t test_count,
                     std::uint64_t seed);

/// As above but with a caller-adjusted config (e.g. scaled-down benches).
Dataset make_dataset(Setting s, const GeneratorConfig& cfg, std::size_t train_count,
                     std::size_t test_count, std::uint64_t seed);

}  // namespace sc::gen
