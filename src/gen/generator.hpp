// Synthetic stream-graph generator reproducing the paper's Fig. 4 recipe.
//
// Starting from a 3-node source->op->sink seed, a randomly chosen frontier
// node is repeatedly replaced by one of three basic sub-structures:
//
//   linear          p = 0.45   chain, max length 5, width 1
//   branch          p = 0.45   fork-join, max length 1, width up to 5
//   fully connected p = 0.10   up to 3 layers of width up to 5, dense between
//
// until the node count reaches a target sampled from [min_nodes, max_nodes].
// Sub-graphs may additionally be replicated in place; replicas share operator
// and channel properties, mirroring the paper's replication rule.
//
// After topology construction, node IPT and edge payloads are scaled so the
// graph's total CPU demand at the nominal source rate is a sampled fraction
// of the cluster capacity, and edge data-saturation rates follow a sampled
// distribution — the paper's "same total computing load distribution across
// size settings" constraint.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "graph/stream_graph.hpp"

namespace sc::gen {

/// How fork nodes distribute output tuples over their out-edges.
enum class ForkSemantics {
  Split,      ///< rate divides evenly across out-edges (shuffle grouping)
  Broadcast,  ///< every out-edge carries the full output rate
};

/// Topology-shape parameters (defaults = the paper's Fig. 4 settings).
struct TopologyConfig {
  std::size_t min_nodes = 100;
  std::size_t max_nodes = 200;

  double p_linear = 0.45;
  double p_branch = 0.45;
  double p_full = 0.10;

  std::size_t max_linear_len = 5;
  std::size_t max_branch_width = 5;
  std::size_t max_full_layers = 3;
  std::size_t max_full_width = 5;

  /// Probability that an expansion step replicates the chosen node in place
  /// (replicas share features) instead of substituting a basic structure.
  double replicate_prob = 0.10;
  std::size_t max_replicas = 4;

  /// Probability that a fork node broadcasts instead of splitting.
  double broadcast_prob = 0.15;
  ForkSemantics default_fork = ForkSemantics::Split;

  /// Selectivity jitter: each operator's selectivity is drawn from
  /// {1 - jitter, 1, 1 + jitter}; 0 disables (paper default).
  double selectivity_jitter = 0.0;

  /// Tiled composition for the Huge scale tier (DESIGN.md §9). When
  /// tile_nodes > 0 the topology is assembled as sequential stages of up to
  /// max_parallel_tiles parallel lanes, each lane an independently grown
  /// ~tile_nodes sub-graph using the grammar above, joined through junction
  /// nodes (single global source and sink are preserved). The frontier
  /// grammar's expansion steps rescan all edges — quadratic in the node
  /// budget and intractable at 1M+ nodes — while tiling keeps growth O(n)
  /// with per-tile grammar cost O(tile_nodes^2). 0 disables (paper-sized
  /// settings use pure grammar growth).
  std::size_t tile_nodes = 0;
  std::size_t max_parallel_tiles = 4;
};

/// Workload scaling parameters tying the graph to a device cluster.
struct WorkloadConfig {
  double source_rate = 1e4;      ///< nominal source tuple rate I (tuples/s)
  double device_mips = 1.25e9;   ///< per-device capacity (instructions/s)
  std::size_t num_devices = 10;
  double bandwidth = 1.25e8;     ///< per-link capacity (bytes/s); 1000 Mbps

  /// Total CPU demand at rate I, as a fraction of aggregate cluster MIPS,
  /// sampled uniformly from [cpu_frac_lo, cpu_frac_hi].
  double cpu_frac_lo = 0.55;
  double cpu_frac_hi = 0.85;

  /// Mean per-edge data-saturation rate at rate I (traffic / bandwidth),
  /// sampled uniformly from [sat_lo, sat_hi].
  double sat_lo = 0.05;
  double sat_hi = 0.25;

  /// Log-normal sigma of the raw (pre-scaling) IPT / payload draws;
  /// controls heterogeneity across operators and channels.
  double ipt_sigma = 0.6;
  double payload_sigma = 0.8;
};

struct GeneratorConfig {
  TopologyConfig topology;
  WorkloadConfig workload;
};

/// Validates a topology config against the generator's accumulator widths:
/// node budgets beyond the supported scale, or expected edge counts that
/// would overflow the 32-bit edge-id space, throw sc::Error instead of
/// silently wrapping during generation. Called by generate_graph and
/// make_dataset; exposed for config-construction code paths.
void check_topology_bounds(const TopologyConfig& top);

/// Generates one stream graph. Deterministic given `rng` state.
graph::StreamGraph generate_graph(const GeneratorConfig& cfg, Rng& rng,
                                  const std::string& name = {});

/// Generates `count` graphs using independent child RNG streams.
std::vector<graph::StreamGraph> generate_graphs(const GeneratorConfig& cfg,
                                                std::size_t count, std::uint64_t seed,
                                                const std::string& name_prefix = "g");

}  // namespace sc::gen
