#include "analysis/validate.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "graph/algorithms.hpp"
#include "graph/types.hpp"
#include "graph/weighted_graph.hpp"

namespace sc::analysis {

namespace {

bool close(double a, double b, double tolerance) {
  return std::abs(a - b) <= tolerance * std::max({1.0, std::abs(a), std::abs(b)});
}

}  // namespace

void validate(const graph::StreamGraph& g) {
  const std::size_t n = g.num_nodes();
  const std::size_t m = g.num_edges();

  for (graph::NodeId v = 0; v < n; ++v) {
    const graph::Operator& op = g.op(v);
    SC_CHECK(std::isfinite(op.ipt) && op.ipt >= 0.0,
             "graph invariant: node CPU feature (ipt) must be finite and non-negative, node "
                 << v << " has " << op.ipt);
    SC_CHECK(std::isfinite(op.selectivity) && op.selectivity >= 0.0,
             "graph invariant: node selectivity (rate feature) must be finite and "
             "non-negative, node "
                 << v << " has " << op.selectivity);
  }

  for (graph::EdgeId e = 0; e < m; ++e) {
    const graph::Channel& c = g.edge(e);
    SC_CHECK(c.src < n && c.dst < n,
             "graph invariant: edge endpoints in bounds — edge " << e << " is (" << c.src
                                                                 << " -> " << c.dst
                                                                 << ") but |V| = " << n);
    SC_CHECK(c.src != c.dst, "graph invariant: no self-loops — edge " << e << " loops at node "
                                                                      << c.src);
    SC_CHECK(std::isfinite(c.payload) && c.payload >= 0.0,
             "graph invariant: edge payload feature must be finite and non-negative, edge "
                 << e << " has " << c.payload);
    SC_CHECK(std::isfinite(c.rate_factor) && c.rate_factor >= 0.0,
             "graph invariant: edge rate factor must be finite and non-negative, edge "
                 << e << " has " << c.rate_factor);
  }

  // In/out adjacency consistency: each edge appears exactly once in its
  // source's out-list and exactly once in its target's in-list.
  std::vector<unsigned char> seen_out(m, 0);
  std::vector<unsigned char> seen_in(m, 0);
  std::size_t out_total = 0;
  std::size_t in_total = 0;
  for (graph::NodeId v = 0; v < n; ++v) {
    for (const graph::EdgeId e : g.out_edges(v)) {
      SC_CHECK(e < m, "graph invariant: out-adjacency edge id in bounds — node "
                          << v << " lists edge " << e << " but |E| = " << m);
      SC_CHECK(g.edge(e).src == v,
               "graph invariant: out-adjacency consistent — node " << v << " lists edge " << e
                                                                   << " whose source is "
                                                                   << g.edge(e).src);
      SC_CHECK(!seen_out[e],
               "graph invariant: out-adjacency lists edge " << e << " more than once");
      seen_out[e] = 1;
      ++out_total;
    }
    for (const graph::EdgeId e : g.in_edges(v)) {
      SC_CHECK(e < m, "graph invariant: in-adjacency edge id in bounds — node "
                          << v << " lists edge " << e << " but |E| = " << m);
      SC_CHECK(g.edge(e).dst == v,
               "graph invariant: in-adjacency consistent — node " << v << " lists edge " << e
                                                                  << " whose target is "
                                                                  << g.edge(e).dst);
      SC_CHECK(!seen_in[e],
               "graph invariant: in-adjacency lists edge " << e << " more than once");
      seen_in[e] = 1;
      ++in_total;
    }
  }
  SC_CHECK(out_total == m && in_total == m,
           "graph invariant: adjacency covers every edge — out lists " << out_total
                                                                       << ", in lists "
                                                                       << in_total
                                                                       << ", |E| = " << m);

  for (const graph::NodeId v : g.sources()) {
    SC_CHECK(v < n && g.in_degree(v) == 0,
             "graph invariant: recorded source " << v << " must exist and have in-degree 0");
  }
  for (const graph::NodeId v : g.sinks()) {
    SC_CHECK(v < n && g.out_degree(v) == 0,
             "graph invariant: recorded sink " << v << " must exist and have out-degree 0");
  }

  SC_CHECK(n == 0 || graph::is_dag(g),
           "graph invariant: stream graph must be a DAG (directed cycle detected)");
}

void validate(const graph::LoadProfile& profile, const graph::StreamGraph& g) {
  const std::size_t n = g.num_nodes();
  const std::size_t m = g.num_edges();
  SC_CHECK(profile.node_rate.size() == n && profile.node_cpu.size() == n,
           "load-profile invariant: per-node arrays sized to the graph — rates "
               << profile.node_rate.size() << ", cpu " << profile.node_cpu.size()
               << ", |V| = " << n);
  SC_CHECK(profile.edge_rate.size() == m && profile.edge_traffic.size() == m,
           "load-profile invariant: per-edge arrays sized to the graph — rates "
               << profile.edge_rate.size() << ", traffic " << profile.edge_traffic.size()
               << ", |E| = " << m);

  double cpu_sum = 0.0;
  for (std::size_t v = 0; v < n; ++v) {
    SC_CHECK(std::isfinite(profile.node_rate[v]) && profile.node_rate[v] >= 0.0,
             "load-profile invariant: node rate finite and non-negative, node "
                 << v << " has " << profile.node_rate[v]);
    SC_CHECK(std::isfinite(profile.node_cpu[v]) && profile.node_cpu[v] >= 0.0,
             "load-profile invariant: node CPU load finite and non-negative, node "
                 << v << " has " << profile.node_cpu[v]);
    cpu_sum += profile.node_cpu[v];
  }
  double traffic_sum = 0.0;
  for (std::size_t e = 0; e < m; ++e) {
    SC_CHECK(std::isfinite(profile.edge_rate[e]) && profile.edge_rate[e] >= 0.0,
             "load-profile invariant: edge rate finite and non-negative, edge "
                 << e << " has " << profile.edge_rate[e]);
    SC_CHECK(std::isfinite(profile.edge_traffic[e]) && profile.edge_traffic[e] >= 0.0,
             "load-profile invariant: edge traffic finite and non-negative, edge "
                 << e << " has " << profile.edge_traffic[e]);
    traffic_sum += profile.edge_traffic[e];
  }
  SC_CHECK(close(cpu_sum, profile.total_cpu, 1e-9),
           "load-profile invariant: total_cpu equals the per-node sum — recorded "
               << profile.total_cpu << ", summed " << cpu_sum);
  SC_CHECK(close(traffic_sum, profile.total_traffic, 1e-9),
           "load-profile invariant: total_traffic equals the per-edge sum — recorded "
               << profile.total_traffic << ", summed " << traffic_sum);
}

void validate(const graph::Coarsening& c, const graph::StreamGraph& g,
              const graph::LoadProfile& profile, double tolerance) {
  const std::size_t n = g.num_nodes();
  const std::size_t k = c.num_coarse_nodes();

  SC_CHECK(c.node_map.size() == n,
           "contraction invariant: node map is total — maps " << c.node_map.size()
                                                              << " nodes, |V| = " << n);
  SC_CHECK(c.coarse.num_nodes() == k,
           "contraction invariant: coarse graph has one node per group — "
               << c.coarse.num_nodes() << " coarse nodes, " << k << " groups");
  SC_CHECK(n == 0 || k > 0, "contraction invariant: non-empty graph must coarsen to at "
                            "least one supernode");

  // Flat group storage is well-formed: offsets are a monotone fence over the
  // member array and the member array covers every original node slot.
  SC_CHECK(c.group_offsets.size() == k + 1 && c.group_offsets.front() == 0 &&
               c.group_offsets.back() == c.group_members.size(),
           "contraction invariant: group offsets fence the member array — "
               << c.group_offsets.size() << " offsets for " << k << " groups, last offset "
               << (c.group_offsets.empty() ? 0 : c.group_offsets.back()) << ", "
               << c.group_members.size() << " members");
  for (std::size_t cid = 0; cid < k; ++cid) {
    SC_CHECK(c.group_offsets[cid] <= c.group_offsets[cid + 1],
             "contraction invariant: group offsets monotone — offset of group "
                 << cid << " is " << c.group_offsets[cid] << ", next is "
                 << c.group_offsets[cid + 1]);
  }
  SC_CHECK(c.group_members.size() == n,
           "contraction invariant: member array is a permutation of V — "
               << c.group_members.size() << " members, |V| = " << n);

  // Surjectivity + idempotence: F maps into [0, k), every coarse node has a
  // non-empty preimage, and group(F(v)) contains v exactly once.
  std::vector<std::size_t> membership_count(n, 0);
  for (std::size_t cid = 0; cid < k; ++cid) {
    SC_CHECK(!c.group(cid).empty(),
             "contraction invariant: node map surjective — supernode " << cid
                                                                       << " has no members");
    for (const graph::NodeId v : c.group(cid)) {
      SC_CHECK(v < n, "contraction invariant: group member in bounds — supernode "
                          << cid << " lists node " << v << ", |V| = " << n);
      SC_CHECK(c.node_map[v] == cid,
               "contraction invariant: groups are the preimages of the node map "
               "(idempotence) — node "
                   << v << " sits in group " << cid << " but maps to " << c.node_map[v]);
      ++membership_count[v];
    }
  }
  for (graph::NodeId v = 0; v < n; ++v) {
    SC_CHECK(c.node_map[v] < k,
             "contraction invariant: node map in bounds — node " << v << " maps to "
                                                                 << c.node_map[v]
                                                                 << ", |V'| = " << k);
    SC_CHECK(membership_count[v] == 1,
             "contraction invariant: every original node lands in exactly one group — node "
                 << v << " appears in " << membership_count[v] << " groups");
  }

  // No self-loop supernodes, endpoints in bounds.
  for (graph::EdgeId e = 0; e < c.coarse.num_edges(); ++e) {
    const graph::WeightedEdge& we = c.coarse.edge(e);
    SC_CHECK(we.a < k && we.b < k,
             "contraction invariant: coarse edge endpoints in bounds — edge " << e << " is ("
                                                                              << we.a << ", "
                                                                              << we.b << ")");
    SC_CHECK(we.a != we.b,
             "contraction invariant: no self-loop supernodes — coarse edge " << e
                                                                             << " loops at "
                                                                             << we.a);
  }

  // Feature-mass conservation: coarse node weight aggregates fine CPU mass,
  // coarse edge weight aggregates exactly the cross-group traffic.
  SC_CHECK(profile.node_cpu.size() == n && profile.edge_traffic.size() == g.num_edges(),
           "contraction invariant: load profile matches the contracted graph");
  double fine_cpu = 0.0;
  for (const double w : profile.node_cpu) fine_cpu += w;
  const double coarse_cpu = c.coarse.total_node_weight();
  SC_CHECK(close(fine_cpu, coarse_cpu, tolerance),
           "contraction invariant: CPU feature mass conserved — fine " << fine_cpu
                                                                       << ", coarse "
                                                                       << coarse_cpu);
  double cross_traffic = 0.0;
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const graph::Channel& ch = g.edge(e);
    if (c.node_map[ch.src] != c.node_map[ch.dst]) cross_traffic += profile.edge_traffic[e];
  }
  const double coarse_traffic = c.coarse.total_edge_weight();
  SC_CHECK(close(cross_traffic, coarse_traffic, tolerance),
           "contraction invariant: traffic feature mass conserved — cross-group "
               << cross_traffic << ", coarse " << coarse_traffic);
}

void validate_partition(const std::vector<int>& part, std::size_t num_nodes,
                        std::size_t num_parts) {
  SC_CHECK(part.size() == num_nodes,
           "partition invariant: every original node assigned — partition covers "
               << part.size() << " nodes, graph has " << num_nodes);
  for (std::size_t v = 0; v < part.size(); ++v) {
    SC_CHECK(part[v] >= 0, "partition invariant: every original node assigned — node "
                               << v << " has label " << part[v]);
    SC_CHECK(static_cast<std::size_t>(part[v]) < num_parts,
             "partition invariant: capacity respected — node " << v << " assigned to part "
                                                               << part[v] << ", only "
                                                               << num_parts
                                                               << " parts/devices exist");
  }
}

void validate_partition_balance(const std::vector<int>& part,
                                const std::vector<double>& node_weights,
                                std::size_t num_parts, double limit) {
  validate_partition(part, node_weights.size(), num_parts);
  std::vector<double> load(num_parts, 0.0);
  for (std::size_t v = 0; v < part.size(); ++v) {
    load[static_cast<std::size_t>(part[v])] += node_weights[v];
  }
  for (std::size_t q = 0; q < num_parts; ++q) {
    SC_CHECK(load[q] <= limit,
             "partition invariant: capacity respected — part " << q << " carries weight "
                                                               << load[q]
                                                               << ", limit is " << limit);
  }
}

}  // namespace sc::analysis
