// Invariant validators — the correctness-analysis layer (DESIGN.md §7).
//
// The pipeline chains stateful stages (contraction -> partition -> expand ->
// simulate -> REINFORCE update) where a silently violated invariant corrupts
// rewards without crashing: a contraction map that is not surjective, a cycle
// in a "DAG", a NaN in an embedding, an unassigned node in a placement. Each
// validator below checks one stage's full contract and throws sc::Error with
// a message naming the violated invariant at the point of violation.
//
// Validators check unconditionally when called; production call sites gate
// them with SC_VALIDATE_AT(Deep, ...) / SC_DCHECK(...) (common/error.hpp) so
// a Release build with validation off pays one relaxed atomic load per site.
// SC_VALIDATE=ON CMake builds default the runtime level to Deep; the CLI
// tools expose --validate to flip it on in any build.
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "graph/contraction.hpp"
#include "graph/rates.hpp"
#include "graph/stream_graph.hpp"

namespace sc::analysis {

/// StreamGraph structural contract: edge endpoints in bounds and non-self,
/// non-negative finite node/edge features (IPT, selectivity, payload, rate
/// factor), in/out CSR adjacency mutually consistent (every edge appears
/// exactly once in its source's out-list and its target's in-list), recorded
/// sources/sinks match degrees, and the graph is a DAG.
void validate(const graph::StreamGraph& g);

/// LoadProfile contract against its graph: per-node and per-edge arrays sized
/// to the graph, all rates/loads finite and non-negative, and totals equal to
/// the per-element sums within tolerance.
void validate(const graph::LoadProfile& profile, const graph::StreamGraph& g);

/// Coarsening (ContractionResult) contract against the graph and profile it
/// was produced from: the node map F : V -> V' is total, in bounds, and
/// surjective; groups are exactly the preimages of F (idempotence: every node
/// appears in exactly one group, namely groups[F(v)]); the coarse graph has
/// one node per group and no self-loop supernodes; and feature mass is
/// conserved — coarse node weights sum to the fine CPU mass and coarse edge
/// weights sum to the cross-group traffic, both within `tolerance` (relative).
void validate(const graph::Coarsening& c, const graph::StreamGraph& g,
              const graph::LoadProfile& profile, double tolerance = 1e-9);

/// Partition/placement contract: every one of `num_nodes` original nodes is
/// assigned (size matches, no negative label) to an existing part
/// (label < num_parts). Works for coarse partitions and fine placements alike.
void validate_partition(const std::vector<int>& part, std::size_t num_nodes,
                        std::size_t num_parts);

/// Capacity contract on top of validate_partition: the summed node weight of
/// every part stays within `limit`. Callers pass the bound the producing
/// algorithm promises (e.g. the multilevel partitioner's
/// max((1+eps)·total/k, max node weight)).
void validate_partition_balance(const std::vector<int>& part,
                                const std::vector<double>& node_weights,
                                std::size_t num_parts, double limit);

}  // namespace sc::analysis
