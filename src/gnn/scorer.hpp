// EdgeCollapseScorer — the paper's edge-collapsing prediction head (Sec. IV-B).
//
//   h_head = W_head · h_u      h_tail = W_tail · h_v
//   h_uv   = W1_merge · [h_head : h_tail : W_edge · f_uv]
//   P(merge(u, v)) = sigmoid(MLP(W2_merge · h_uv))
//
// Head and tail use distinct projections because the influence of a directed
// edge's endpoints is asymmetric. Logits (pre-sigmoid) are returned so the
// Bernoulli log-likelihood can be computed stably.
#pragma once

#include "gnn/features.hpp"
#include "nn/module.hpp"

namespace sc::gnn {

struct ScorerConfig {
  std::size_t proj = 24;         ///< head/tail projection size
  std::size_t edge_proj = 8;     ///< edge-feature projection size
  std::size_t merge_hidden = 32; ///< width of the merge MLP
  bool use_edge_features = true; ///< ablation: Table II "w/o edge-collapsing"
  /// Initial bias of the output logit. Negative values make the untrained
  /// policy conservative (collapse little), so the framework starts at the
  /// Metis floor instead of a random heavy coarsening; REINFORCE then adds
  /// collapses where they pay off.
  double init_logit_bias = -1.5;
};

class EdgeCollapseScorer : public nn::Module {
public:
  EdgeCollapseScorer() = default;
  /// `node_repr_dim` is the encoder output width (2m).
  EdgeCollapseScorer(std::size_t node_repr_dim, const ScorerConfig& cfg, Rng& rng);

  /// Per-edge merge logits: (E) vector tensor.
  nn::Tensor forward(const nn::Tensor& node_repr, const GraphFeatures& f) const;

  std::vector<nn::Tensor> parameters() const override;
  const ScorerConfig& config() const { return cfg_; }

private:
  ScorerConfig cfg_;
  nn::Linear head_;
  nn::Linear tail_;
  nn::Linear edge_;
  nn::Linear merge1_;
  nn::Mlp merge2_;
};

}  // namespace sc::gnn
