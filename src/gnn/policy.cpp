#include "gnn/policy.hpp"

#include <cmath>

#include "common/error.hpp"
#include "nn/serialize.hpp"

namespace sc::gnn {

using nn::Tensor;

CoarseningPolicy::CoarseningPolicy(const PolicyConfig& cfg) : cfg_(cfg) {
  Rng rng(cfg.seed);
  encoder_ = EdgeAwareEncoder(cfg.encoder, rng);
  scorer_ = EdgeCollapseScorer(encoder_.output_dim(), cfg.scorer, rng);
}

Tensor CoarseningPolicy::logits(const GraphFeatures& f) const {
  if (f.edge_src.empty()) return Tensor::zeros({0});  // edgeless graph: no decisions
  return scorer_.forward(encoder_.forward(f), f);
}

EdgeMask CoarseningPolicy::sample(const std::vector<double>& logit_values,
                                  Rng& rng) const {
  EdgeMask mask(logit_values.size());
  for (std::size_t e = 0; e < mask.size(); ++e) {
    const double p = 1.0 / (1.0 + std::exp(-logit_values[e]));
    mask[e] = rng.bernoulli(p) ? 1 : 0;
  }
  return mask;
}

EdgeMask CoarseningPolicy::greedy(const std::vector<double>& logit_values,
                                  double threshold) const {
  SC_CHECK(threshold > 0.0 && threshold < 1.0, "threshold must lie in (0, 1)");
  const double logit_threshold = std::log(threshold / (1.0 - threshold));
  EdgeMask mask(logit_values.size());
  for (std::size_t e = 0; e < mask.size(); ++e) {
    mask[e] = logit_values[e] > logit_threshold ? 1 : 0;
  }
  return mask;
}

Tensor CoarseningPolicy::log_prob(const Tensor& logit_tensor, const EdgeMask& mask) const {
  return nn::sum(nn::bernoulli_log_prob(logit_tensor, mask));
}

graph::Coarsening CoarseningPolicy::apply(const graph::StreamGraph& g,
                                          const graph::LoadProfile& profile,
                                          const EdgeMask& mask) {
  SC_CHECK(mask.size() == g.num_edges(), "mask size does not match edge count");
  std::vector<bool> bits(mask.size());
  for (std::size_t e = 0; e < mask.size(); ++e) bits[e] = mask[e] != 0;
  return graph::contract(g, profile, bits);
}

std::vector<Tensor> CoarseningPolicy::parameters() const {
  return nn::params_of({&encoder_, &scorer_});
}

void CoarseningPolicy::save(const std::string& path) const {
  nn::save_parameters(path, parameters());
}

void CoarseningPolicy::load(const std::string& path) {
  nn::load_parameters(path, parameters());
}

}  // namespace sc::gnn
