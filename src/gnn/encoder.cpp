#include "gnn/encoder.hpp"

#include "common/error.hpp"

namespace sc::gnn {

using nn::Tensor;

EdgeAwareEncoder::EdgeAwareEncoder(const EncoderConfig& cfg, Rng& rng)
    : cfg_(cfg),
      init_up_(kNodeFeatureDim, cfg.hidden, rng),
      init_down_(kNodeFeatureDim, cfg.hidden, rng),
      w1_(2 * cfg.hidden, cfg.hidden, rng),
      w_edge_(kEdgeFeatureDim, cfg.hidden, rng, /*bias=*/false),
      w2_(2 * cfg.hidden, cfg.hidden, rng) {
  SC_CHECK(cfg.hidden > 0, "encoder hidden size must be positive");
  SC_CHECK(cfg.iterations > 0, "encoder needs at least one iteration");
}

Tensor EdgeAwareEncoder::forward(const GraphFeatures& f) const {
  SC_CHECK(cfg_.hidden > 0, "encoder used before initialisation");
  // Checked builds scan weights and inputs for NaN/inf before the forward and
  // the produced embedding after it: a single poisoned value would otherwise
  // propagate through scatter_mean into every logit and corrupt rewards
  // silently (sampling from NaN probabilities never throws).
  SC_VALIDATE_AT(Deep, {
    const auto check_layer = [](const nn::Linear& layer, const std::string& name) {
      const std::vector<Tensor> ps = layer.parameters();
      nn::check_finite(ps[0], name + ".weight");
      if (ps.size() > 1) nn::check_finite(ps[1], name + ".bias");
    };
    check_layer(init_up_, "encoder.init_up");
    check_layer(init_down_, "encoder.init_down");
    check_layer(w1_, "encoder.w1");
    check_layer(w_edge_, "encoder.w_edge");
    check_layer(w2_, "encoder.w2");
    nn::check_finite(f.node, "encoder input node features");
    nn::check_finite(f.edge, "encoder input edge features");
  });
  const std::size_t n = f.node.rows();
  const std::size_t m_edges = f.edge_src.size();

  Tensor h_up = init_up_.forward_tanh(f.node);      // (n, m), fused
  Tensor h_down = init_down_.forward_tanh(f.node);  // (n, m), fused

  // Precompute the edge-feature contribution once; it is iteration-invariant.
  Tensor edge_term;
  if (cfg_.use_edge_features && m_edges > 0) {
    edge_term = w_edge_.forward(f.edge);  // (E, m)
  }

  for (std::size_t k = 0; k < cfg_.iterations; ++k) {
    const Tensor h = nn::concat_cols({h_up, h_down});  // (n, 2m)
    const Tensor base = w1_.forward(h);                // (n, m)

    Tensor agg_in, agg_out;
    if (m_edges > 0) {
      // Edge messages tanh(base[src] + edge_term) via the fused
      // gather + add + tanh kernel (one pass, one backward node).
      // Upstream aggregation at v: messages from edge sources u.
      const Tensor msg_in = nn::gather_add_tanh(base, f.edge_src, edge_term);
      agg_in = nn::scatter_mean(msg_in, f.edge_dst, n);

      // Downstream aggregation at v: messages from edge targets w.
      const Tensor msg_out = nn::gather_add_tanh(base, f.edge_dst, edge_term);
      agg_out = nn::scatter_mean(msg_out, f.edge_src, n);
    } else {
      agg_in = Tensor::zeros({n, cfg_.hidden});
      agg_out = Tensor::zeros({n, cfg_.hidden});
    }

    h_up = w2_.forward_tanh(nn::concat_cols({h_up, agg_in}));
    h_down = w2_.forward_tanh(nn::concat_cols({h_down, agg_out}));
  }
  Tensor out = nn::concat_cols({h_up, h_down});  // (n, 2m)
  SC_VALIDATE_AT(Deep, nn::check_finite(out, "encoder output embedding"));
  return out;
}

std::vector<Tensor> EdgeAwareEncoder::parameters() const {
  return nn::params_of({&init_up_, &init_down_, &w1_, &w_edge_, &w2_});
}

}  // namespace sc::gnn
