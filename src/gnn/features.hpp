// Feature extraction: numeric node/edge features for the coarsening model
// and the learning-based baselines.
//
// Node features follow the paper (CPU utilization and emitted payload),
// extended with consumed traffic, degrees and normalised depth which are
// cheap and strictly graph-local. Edge features carry the data-saturation
// rate (the quantity Fig. 9 analyses) plus normalised traffic shares.
// All features are scale-free: loads are normalised by device/link capacity
// so a model trained on one setting transfers to another.
#pragma once

#include <vector>

#include "graph/rates.hpp"
#include "graph/stream_graph.hpp"
#include "nn/tensor.hpp"
#include "sim/cluster.hpp"

namespace sc::gnn {

inline constexpr std::size_t kNodeFeatureDim = 6;
inline constexpr std::size_t kEdgeFeatureDim = 3;

struct GraphFeatures {
  nn::Tensor node;  ///< (n, kNodeFeatureDim), no grad
  nn::Tensor edge;  ///< (m, kEdgeFeatureDim), no grad (zero-row tensor if m = 0)
  std::vector<std::size_t> edge_src;  ///< per-edge source node index
  std::vector<std::size_t> edge_dst;  ///< per-edge target node index
};

/// Builds features for `g` under cluster `spec` at its nominal source rate.
GraphFeatures extract_features(const graph::StreamGraph& g,
                               const graph::LoadProfile& profile,
                               const sim::ClusterSpec& spec);

/// Block-diagonal packing of several graphs into one feature set.
///
/// Node rows are concatenated in input order and edge endpoints are shifted
/// by each graph's node offset, so a single encoder/scorer forward over
/// `merged` computes exactly the per-graph forwards: message passing never
/// crosses graph boundaries (edges stay within their block and scatter_mean
/// buckets are disjoint), hence the logits for graph `gi` are the slice
/// `[edge_offset[gi], edge_offset[gi + 1])` of the batched logit vector,
/// bit-identical to running that graph alone.
struct BatchedGraphFeatures {
  GraphFeatures merged;                  ///< packed features of all graphs
  std::vector<std::size_t> node_offset;  ///< size G+1; graph gi owns node rows [off[gi], off[gi+1])
  std::vector<std::size_t> edge_offset;  ///< size G+1; graph gi owns edge rows [off[gi], off[gi+1])

  std::size_t num_graphs() const { return node_offset.empty() ? 0 : node_offset.size() - 1; }
  std::size_t num_edges(std::size_t gi) const {
    return edge_offset[gi + 1] - edge_offset[gi];
  }
};

/// Packs the given per-graph features into one block-diagonal batch.
/// Edgeless graphs contribute zero edge rows (their 1-row zero placeholder
/// edge tensor is skipped); if every graph is edgeless the merged edge
/// tensor keeps the usual single zero row.
BatchedGraphFeatures batch_features(const std::vector<const GraphFeatures*>& parts);

/// Extracts graph `gi`'s logits from a batched logit vector (values copied).
std::vector<double> logit_slice(const std::vector<double>& batched_logits,
                                const BatchedGraphFeatures& b, std::size_t gi);

}  // namespace sc::gnn
