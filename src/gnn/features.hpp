// Feature extraction: numeric node/edge features for the coarsening model
// and the learning-based baselines.
//
// Node features follow the paper (CPU utilization and emitted payload),
// extended with consumed traffic, degrees and normalised depth which are
// cheap and strictly graph-local. Edge features carry the data-saturation
// rate (the quantity Fig. 9 analyses) plus normalised traffic shares.
// All features are scale-free: loads are normalised by device/link capacity
// so a model trained on one setting transfers to another.
#pragma once

#include <vector>

#include "graph/rates.hpp"
#include "graph/stream_graph.hpp"
#include "nn/tensor.hpp"
#include "sim/cluster.hpp"

namespace sc::gnn {

inline constexpr std::size_t kNodeFeatureDim = 6;
inline constexpr std::size_t kEdgeFeatureDim = 3;

struct GraphFeatures {
  nn::Tensor node;  ///< (n, kNodeFeatureDim), no grad
  nn::Tensor edge;  ///< (m, kEdgeFeatureDim), no grad (zero-row tensor if m = 0)
  std::vector<std::size_t> edge_src;  ///< per-edge source node index
  std::vector<std::size_t> edge_dst;  ///< per-edge target node index
};

/// Builds features for `g` under cluster `spec` at its nominal source rate.
GraphFeatures extract_features(const graph::StreamGraph& g,
                               const graph::LoadProfile& profile,
                               const sim::ClusterSpec& spec);

}  // namespace sc::gnn
