// CoarseningPolicy — the full coarsening model: encoder + edge-collapse head,
// plus the sampling / log-likelihood interface REINFORCE needs.
#pragma once

#include <string>

#include "gnn/encoder.hpp"
#include "gnn/scorer.hpp"
#include "graph/contraction.hpp"

namespace sc::gnn {

struct PolicyConfig {
  EncoderConfig encoder;
  ScorerConfig scorer;
  std::uint64_t seed = 12345;
};

/// One edge-collapse decision vector (the RL action).
using EdgeMask = std::vector<int>;  // 0/1 per edge

class CoarseningPolicy : public nn::Module {
public:
  CoarseningPolicy() = default;
  explicit CoarseningPolicy(const PolicyConfig& cfg);

  /// Per-edge merge logits. Gradients are recorded iff grad mode is on.
  nn::Tensor logits(const GraphFeatures& f) const;

  /// Samples a Bernoulli mask from logit values (no autograd involved).
  EdgeMask sample(const std::vector<double>& logit_values, Rng& rng) const;

  /// Deterministic mask: collapse where sigmoid(logit) > threshold.
  EdgeMask greedy(const std::vector<double>& logit_values, double threshold = 0.5) const;

  /// Scalar sum of Bernoulli log-likelihoods of `mask` under `logit_tensor`.
  nn::Tensor log_prob(const nn::Tensor& logit_tensor, const EdgeMask& mask) const;

  /// Applies a mask: contract the graph into a Coarsening.
  static graph::Coarsening apply(const graph::StreamGraph& g,
                                 const graph::LoadProfile& profile,
                                 const EdgeMask& mask);

  std::vector<nn::Tensor> parameters() const override;
  const PolicyConfig& config() const { return cfg_; }

  void save(const std::string& path) const;
  void load(const std::string& path);

private:
  PolicyConfig cfg_;
  EdgeAwareEncoder encoder_;
  EdgeCollapseScorer scorer_;
};

}  // namespace sc::gnn
