#include "gnn/scorer.hpp"

#include "common/error.hpp"

namespace sc::gnn {

using nn::Tensor;

EdgeCollapseScorer::EdgeCollapseScorer(std::size_t node_repr_dim, const ScorerConfig& cfg,
                                       Rng& rng)
    : cfg_(cfg),
      head_(node_repr_dim, cfg.proj, rng, /*bias=*/false),
      tail_(node_repr_dim, cfg.proj, rng, /*bias=*/false),
      edge_(kEdgeFeatureDim, cfg.edge_proj, rng, /*bias=*/false),
      merge1_(2 * cfg.proj + (cfg.use_edge_features ? cfg.edge_proj : 0),
              cfg.merge_hidden, rng),
      merge2_({cfg.merge_hidden, cfg.merge_hidden, 1}, rng, nn::Activation::Tanh) {
  SC_CHECK(cfg.proj > 0 && cfg.merge_hidden > 0, "scorer dims must be positive");
  // Bias the output layer so the initial collapse probability is low.
  auto params = merge2_.parameters();
  params.back().value()[0] = cfg.init_logit_bias;
}

Tensor EdgeCollapseScorer::forward(const Tensor& node_repr, const GraphFeatures& f) const {
  SC_CHECK(cfg_.proj > 0, "scorer used before initialisation");
  const std::size_t m_edges = f.edge_src.size();
  SC_CHECK(m_edges > 0, "cannot score a graph with no edges");

  const Tensor h_head = head_.forward(node_repr);  // (n, p)
  const Tensor h_tail = tail_.forward(node_repr);  // (n, p)

  std::vector<Tensor> parts{nn::gather_rows(h_head, f.edge_src),
                            nn::gather_rows(h_tail, f.edge_dst)};
  if (cfg_.use_edge_features) {
    parts.push_back(edge_.forward(f.edge));
  }
  const Tensor h_uv = merge1_.forward_tanh(nn::concat_cols(parts));  // fused
  const Tensor logits = merge2_.forward(h_uv);  // (E, 1)
  return nn::reshape(logits, {m_edges});
}

std::vector<Tensor> EdgeCollapseScorer::parameters() const {
  auto ps = nn::params_of({&head_, &tail_, &merge1_, &merge2_});
  if (cfg_.use_edge_features) {
    for (Tensor& p : edge_.parameters()) ps.push_back(std::move(p));
  }
  return ps;
}

}  // namespace sc::gnn
