#include "gnn/features.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "graph/algorithms.hpp"

namespace sc::gnn {

GraphFeatures extract_features(const graph::StreamGraph& g,
                               const graph::LoadProfile& profile,
                               const sim::ClusterSpec& spec) {
  SC_CHECK(profile.node_cpu.size() == g.num_nodes(), "profile does not match graph");
  const std::size_t n = g.num_nodes();
  const std::size_t m = g.num_edges();
  const double rate = spec.source_rate;

  const auto depth = graph::depth_layers(g);
  const double max_depth = static_cast<double>(
      std::max<std::size_t>(1, *std::max_element(depth.begin(), depth.end())));

  std::vector<double> node_vals;
  node_vals.reserve(n * kNodeFeatureDim);
  for (graph::NodeId v = 0; v < n; ++v) {
    const double cpu_util = rate * profile.node_cpu[v] / spec.device_mips;
    double emitted = 0.0;
    for (const graph::EdgeId e : g.out_edges(v)) emitted += profile.edge_traffic[e];
    double consumed = 0.0;
    for (const graph::EdgeId e : g.in_edges(v)) consumed += profile.edge_traffic[e];
    node_vals.push_back(cpu_util);
    node_vals.push_back(rate * emitted / spec.bandwidth);
    node_vals.push_back(rate * consumed / spec.bandwidth);
    node_vals.push_back(std::log1p(static_cast<double>(g.out_degree(v))));
    node_vals.push_back(std::log1p(static_cast<double>(g.in_degree(v))));
    node_vals.push_back(static_cast<double>(depth[v]) / max_depth);
  }

  GraphFeatures f;
  f.node = nn::Tensor::from(std::move(node_vals), {n, kNodeFeatureDim});

  std::vector<double> edge_vals;
  edge_vals.reserve(std::max<std::size_t>(1, m) * kEdgeFeatureDim);
  f.edge_src.reserve(m);
  f.edge_dst.reserve(m);
  const double total_traffic = std::max(profile.total_traffic, 1e-12);
  for (graph::EdgeId e = 0; e < m; ++e) {
    const auto& c = g.edge(e);
    f.edge_src.push_back(c.src);
    f.edge_dst.push_back(c.dst);
    edge_vals.push_back(rate * profile.edge_traffic[e] / spec.bandwidth);  // saturation
    edge_vals.push_back(profile.edge_traffic[e] / total_traffic);
    edge_vals.push_back(std::log1p(profile.edge_rate[e]));
  }
  if (m == 0) edge_vals.assign(kEdgeFeatureDim, 0.0);
  f.edge = nn::Tensor::from(std::move(edge_vals),
                            {std::max<std::size_t>(1, m), kEdgeFeatureDim});
  return f;
}

}  // namespace sc::gnn
