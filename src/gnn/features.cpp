#include "gnn/features.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "graph/algorithms.hpp"

namespace sc::gnn {

GraphFeatures extract_features(const graph::StreamGraph& g,
                               const graph::LoadProfile& profile,
                               const sim::ClusterSpec& spec) {
  SC_CHECK(profile.node_cpu.size() == g.num_nodes(), "profile does not match graph");
  const std::size_t n = g.num_nodes();
  const std::size_t m = g.num_edges();
  const double rate = spec.source_rate;

  const auto depth = graph::depth_layers(g);
  const double max_depth = static_cast<double>(
      std::max<std::size_t>(1, *std::max_element(depth.begin(), depth.end())));

  std::vector<double> node_vals;
  node_vals.reserve(n * kNodeFeatureDim);
  for (graph::NodeId v = 0; v < n; ++v) {
    const double cpu_util = rate * profile.node_cpu[v] / spec.device_mips;
    double emitted = 0.0;
    for (const graph::EdgeId e : g.out_edges(v)) emitted += profile.edge_traffic[e];
    double consumed = 0.0;
    for (const graph::EdgeId e : g.in_edges(v)) consumed += profile.edge_traffic[e];
    node_vals.push_back(cpu_util);
    node_vals.push_back(rate * emitted / spec.bandwidth);
    node_vals.push_back(rate * consumed / spec.bandwidth);
    node_vals.push_back(std::log1p(static_cast<double>(g.out_degree(v))));
    node_vals.push_back(std::log1p(static_cast<double>(g.in_degree(v))));
    node_vals.push_back(static_cast<double>(depth[v]) / max_depth);
  }

  GraphFeatures f;
  f.node = nn::Tensor::from(std::move(node_vals), {n, kNodeFeatureDim});

  std::vector<double> edge_vals;
  edge_vals.reserve(std::max<std::size_t>(1, m) * kEdgeFeatureDim);
  f.edge_src.reserve(m);
  f.edge_dst.reserve(m);
  const double total_traffic = std::max(profile.total_traffic, 1e-12);
  for (graph::EdgeId e = 0; e < m; ++e) {
    const auto& c = g.edge(e);
    f.edge_src.push_back(c.src);
    f.edge_dst.push_back(c.dst);
    edge_vals.push_back(rate * profile.edge_traffic[e] / spec.bandwidth);  // saturation
    edge_vals.push_back(profile.edge_traffic[e] / total_traffic);
    edge_vals.push_back(std::log1p(profile.edge_rate[e]));
  }
  if (m == 0) edge_vals.assign(kEdgeFeatureDim, 0.0);
  f.edge = nn::Tensor::from(std::move(edge_vals),
                            {std::max<std::size_t>(1, m), kEdgeFeatureDim});
  return f;
}

BatchedGraphFeatures batch_features(const std::vector<const GraphFeatures*>& parts) {
  BatchedGraphFeatures b;
  const std::size_t num_graphs = parts.size();
  b.node_offset.assign(num_graphs + 1, 0);
  b.edge_offset.assign(num_graphs + 1, 0);
  for (std::size_t gi = 0; gi < num_graphs; ++gi) {
    SC_CHECK(parts[gi] != nullptr, "batch_features: null part");
    SC_CHECK(parts[gi]->node.cols() == kNodeFeatureDim,
             "batch_features: unexpected node feature width");
    b.node_offset[gi + 1] = b.node_offset[gi] + parts[gi]->node.rows();
    b.edge_offset[gi + 1] = b.edge_offset[gi] + parts[gi]->edge_src.size();
  }
  const std::size_t total_nodes = b.node_offset[num_graphs];
  const std::size_t total_edges = b.edge_offset[num_graphs];

  std::vector<double> node_vals;
  node_vals.reserve(total_nodes * kNodeFeatureDim);
  std::vector<double> edge_vals;
  edge_vals.reserve(std::max<std::size_t>(1, total_edges) * kEdgeFeatureDim);
  b.merged.edge_src.reserve(total_edges);
  b.merged.edge_dst.reserve(total_edges);

  for (std::size_t gi = 0; gi < num_graphs; ++gi) {
    const GraphFeatures& f = *parts[gi];
    const std::vector<double>& nv = f.node.value();
    node_vals.insert(node_vals.end(), nv.begin(), nv.end());
    const std::size_t m = f.edge_src.size();
    if (m > 0) {
      // Skip the 1-row zero placeholder that edgeless graphs carry: only
      // real edge rows enter the batch.
      const std::vector<double>& ev = f.edge.value();
      SC_CHECK(f.edge.rows() == m, "batch_features: edge tensor/index mismatch");
      edge_vals.insert(edge_vals.end(), ev.begin(), ev.end());
      const std::size_t shift = b.node_offset[gi];
      for (std::size_t e = 0; e < m; ++e) {
        b.merged.edge_src.push_back(f.edge_src[e] + shift);
        b.merged.edge_dst.push_back(f.edge_dst[e] + shift);
      }
    }
  }
  if (total_edges == 0) edge_vals.assign(kEdgeFeatureDim, 0.0);

  b.merged.node = nn::Tensor::from(std::move(node_vals), {total_nodes, kNodeFeatureDim});
  b.merged.edge = nn::Tensor::from(
      std::move(edge_vals), {std::max<std::size_t>(1, total_edges), kEdgeFeatureDim});
  return b;
}

std::vector<double> logit_slice(const std::vector<double>& batched_logits,
                                const BatchedGraphFeatures& b, std::size_t gi) {
  SC_CHECK(gi + 1 < b.edge_offset.size(), "logit_slice: graph index out of range");
  SC_CHECK(batched_logits.size() == b.edge_offset.back(),
           "logit_slice: logit vector does not match batch");
  return std::vector<double>(batched_logits.begin() + static_cast<std::ptrdiff_t>(b.edge_offset[gi]),
                             batched_logits.begin() + static_cast<std::ptrdiff_t>(b.edge_offset[gi + 1]));
}

}  // namespace sc::gnn
