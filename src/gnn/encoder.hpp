// EdgeAwareEncoder — the paper's edge-aware stream-graph encoding (Sec. IV-A).
//
// Each node carries two sub-embeddings, h_v+ (upstream view) and h_v−
// (downstream view), each of dimension m. One iteration:
//
//   msg(e = u->v)  = tanh(W1 · h_u + W_edge · f_e)          (edge-aware message)
//   agg_in(v)      = mean over in-edges of msg               (scatter-mean)
//   h_v+ ← tanh(W2 · [h_v+ : agg_in(v)])
//
// and symmetrically for the downstream view over out-edges. W1/W2/W_edge are
// shared between directions, as the paper reports works best empirically.
// K = 2 iterations by default. The final representation is [h_v+ : h_v−].
#pragma once

#include "gnn/features.hpp"
#include "nn/module.hpp"

namespace sc::gnn {

struct EncoderConfig {
  std::size_t hidden = 24;      ///< m: per-direction embedding size
  std::size_t iterations = 2;   ///< K hops
  bool use_edge_features = true;  ///< ablation: Table II "w/o edge-encoding"
};

class EdgeAwareEncoder : public nn::Module {
public:
  EdgeAwareEncoder() = default;
  EdgeAwareEncoder(const EncoderConfig& cfg, Rng& rng);

  /// Returns the node representation matrix (n, 2m).
  nn::Tensor forward(const GraphFeatures& f) const;

  std::vector<nn::Tensor> parameters() const override;
  const EncoderConfig& config() const { return cfg_; }
  std::size_t output_dim() const { return 2 * cfg_.hidden; }

private:
  EncoderConfig cfg_;
  nn::Linear init_up_;    // node features -> m
  nn::Linear init_down_;  // node features -> m
  nn::Linear w1_;         // 2m -> m (shared between directions)
  nn::Linear w_edge_;     // edge features -> m (shared)
  nn::Linear w2_;         // 2m -> m (shared)
};

}  // namespace sc::gnn
