#include "sim/event.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "graph/algorithms.hpp"

namespace sc::sim {

EventSimulator::EventSimulator(const graph::StreamGraph& g, const ClusterSpec& spec,
                               EventSimConfig cfg)
    : graph_(&g),
      spec_(spec),
      cfg_(cfg),
      profile_(graph::compute_load_profile(g)),
      topo_(graph::topological_order(g)) {
  validate_spec(spec);
  SC_CHECK(cfg_.dt > 0.0, "tick length must be positive");
  SC_CHECK(cfg_.measure_ticks > 0, "measurement window must be positive");
  if (cfg_.warmup_ticks == 0) {
    // The pipeline needs at least one tick per hop to fill, plus settling time
    // for the backpressure feedback loop to reach steady state.
    cfg_.warmup_ticks = 6 * graph::critical_path_length(g) + 400;
  }
  for (const graph::NodeId s : g.sinks()) unit_sink_rate_ += profile_.node_rate[s];
  SC_CHECK(unit_sink_rate_ > 0.0, "graph delivers no tuples to any sink");
}

double EventSimulator::throughput(const Placement& p) const {
  const graph::StreamGraph& g = *graph_;
  validate_placement(g, spec_, p);

  const std::size_t n = g.num_nodes();
  const std::size_t m = g.num_edges();
  const double dt = cfg_.dt;
  std::vector<double> device_budget(spec_.num_devices);
  for (std::size_t d = 0; d < spec_.num_devices; ++d) {
    device_budget[d] = spec_.mips_of(d) * dt;
  }
  const double link_budget = spec_.bandwidth * dt;

  // Bounded queues implement backpressure: an operator may only process what
  // its downstream buffers can absorb, so a saturated bottleneck throttles
  // the whole upstream pipeline instead of letting backlogged upstream
  // operators starve downstream ones of CPU share.
  constexpr double kBufferTicks = 16.0;
  std::vector<double> qcap(n), lcap(m);
  for (std::size_t v = 0; v < n; ++v) {
    qcap[v] = kBufferTicks * dt * spec_.source_rate *
              std::max(profile_.node_rate[v], 1e-6);
  }
  for (std::size_t e = 0; e < m; ++e) {
    lcap[e] = kBufferTicks * dt * spec_.source_rate *
              std::max(profile_.edge_rate[e], 1e-6);
  }

  std::vector<double> queue(n, 0.0);        // tuples waiting at each operator
  std::vector<double> arriving(n, 0.0);     // tuples arriving for next tick
  std::vector<double> link_pending(m, 0.0); // tuples in flight on cross edges

  std::vector<bool> crosses(m, false);
  std::vector<std::size_t> link_key(m, 0);
  const bool pairwise = spec_.link_model == LinkModel::PairwiseLinks;
  for (graph::EdgeId e = 0; e < m; ++e) {
    const auto& c = g.edge(e);
    if (p[c.src] == p[c.dst]) continue;
    crosses[e] = true;
    if (pairwise) {
      const std::size_t lo = static_cast<std::size_t>(std::min(p[c.src], p[c.dst]));
      const std::size_t hi = static_cast<std::size_t>(std::max(p[c.src], p[c.dst]));
      link_key[e] = lo * spec_.num_devices + hi;
    }
  }
  const std::size_t num_links =
      pairwise ? spec_.num_devices * spec_.num_devices : spec_.num_devices;

  std::vector<double> allowed(n, 0.0);
  std::vector<double> device_demand(spec_.num_devices, 0.0);
  std::vector<double> link_demand(num_links, 0.0);
  std::vector<double> nic_scale(spec_.num_devices, 1.0);

  double delivered = 0.0;  // sink tuples processed during measurement
  const std::size_t total_ticks = cfg_.warmup_ticks + cfg_.measure_ticks;

  for (std::size_t tick = 0; tick < total_ticks; ++tick) {
    const bool measuring = tick >= cfg_.warmup_ticks;

    // 1. Source admission, clipped by queue room (backpressure to the source).
    for (const graph::NodeId s : g.sources()) {
      const double room = qcap[s] - queue[s] - arriving[s];
      arriving[s] += std::min(spec_.source_rate * dt, std::max(0.0, room));
    }
    for (std::size_t v = 0; v < n; ++v) {
      queue[v] += arriving[v];
      arriving[v] = 0.0;
    }

    // 2. Per-operator processing allowance: queue content limited by the
    //    room available in every downstream buffer.
    for (std::size_t v = 0; v < n; ++v) {
      double a = queue[v];
      const double out_per_tuple = g.op(v).selectivity;
      // v < num_nodes, which a StreamGraph bounds to the 32-bit id space.
      for (const graph::EdgeId e : g.out_edges(static_cast<graph::NodeId>(v))) {  // sc-lint: allow(unchecked-id-narrowing)
        const double per_tuple = out_per_tuple * g.edge(e).rate_factor;
        if (per_tuple <= 0.0) continue;
        const double fill = crosses[e] ? link_pending[e]
                                       : queue[g.edge(e).dst] + arriving[g.edge(e).dst];
        const double room = (crosses[e] ? lcap[e] : qcap[g.edge(e).dst]) - fill;
        a = std::min(a, std::max(0.0, room) / per_tuple);
      }
      allowed[v] = a;
    }

    // 3. CPU: proportional fair share of each device over allowed demand.
    std::fill(device_demand.begin(), device_demand.end(), 0.0);
    for (std::size_t v = 0; v < n; ++v) {
      device_demand[static_cast<std::size_t>(p[v])] += allowed[v] * g.op(v).ipt;
    }
    for (const graph::NodeId v : topo_) {
      const std::size_t dev = static_cast<std::size_t>(p[v]);
      const double demand = device_demand[dev];
      const double share =
          demand <= device_budget[dev] ? 1.0 : device_budget[dev] / demand;
      const double processed = allowed[v] * share;
      if (processed <= 0.0) continue;
      queue[v] -= processed;
      if (g.out_degree(v) == 0) {
        if (measuring) delivered += processed;
        continue;
      }
      const double out = processed * g.op(v).selectivity;
      for (const graph::EdgeId e : g.out_edges(v)) {
        const double tuples = out * g.edge(e).rate_factor;
        if (crosses[e]) {
          link_pending[e] += tuples;
        } else {
          arriving[g.edge(e).dst] += tuples;
        }
      }
    }

    // 4. Network: proportional fair share per link (or per NIC pair), also
    //    limited by destination queue room.
    const auto deliverable = [&](graph::EdgeId e) {
      const graph::NodeId dst = g.edge(e).dst;
      const double room = qcap[dst] - queue[dst] - arriving[dst];
      return std::min(link_pending[e], std::max(0.0, room));
    };
    if (pairwise) {
      std::fill(link_demand.begin(), link_demand.end(), 0.0);
      for (graph::EdgeId e = 0; e < m; ++e) {
        if (crosses[e]) link_demand[link_key[e]] += link_pending[e] * g.edge(e).payload;
      }
      for (graph::EdgeId e = 0; e < m; ++e) {
        if (!crosses[e] || link_pending[e] <= 0.0) continue;
        const double demand = link_demand[link_key[e]];
        const double share = demand <= link_budget ? 1.0 : link_budget / demand;
        const double moved = std::min(link_pending[e] * share, deliverable(e));
        link_pending[e] -= moved;
        arriving[g.edge(e).dst] += moved;
      }
    } else {
      std::fill(link_demand.begin(), link_demand.end(), 0.0);
      for (graph::EdgeId e = 0; e < m; ++e) {
        if (!crosses[e]) continue;
        const double bytes = link_pending[e] * g.edge(e).payload;
        link_demand[static_cast<std::size_t>(p[g.edge(e).src])] += bytes;
        link_demand[static_cast<std::size_t>(p[g.edge(e).dst])] += bytes;
      }
      for (std::size_t d = 0; d < spec_.num_devices; ++d) {
        nic_scale[d] = link_demand[d] <= link_budget ? 1.0 : link_budget / link_demand[d];
      }
      for (graph::EdgeId e = 0; e < m; ++e) {
        if (!crosses[e] || link_pending[e] <= 0.0) continue;
        const double share = std::min(nic_scale[static_cast<std::size_t>(p[g.edge(e).src])],
                                      nic_scale[static_cast<std::size_t>(p[g.edge(e).dst])]);
        const double moved = std::min(link_pending[e] * share, deliverable(e));
        link_pending[e] -= moved;
        arriving[g.edge(e).dst] += moved;
      }
    }
  }

  const double window = static_cast<double>(cfg_.measure_ticks) * dt;
  const double sink_rate = delivered / window;  // tuples/s consumed at sinks
  // Convert to an equivalent sustained source rate.
  return std::min(spec_.source_rate, sink_rate / unit_sink_rate_);
}

double EventSimulator::relative_throughput(const Placement& p) const {
  return throughput(p) / spec_.source_rate;
}

}  // namespace sc::sim
