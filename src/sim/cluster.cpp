#include "sim/cluster.hpp"

#include <unordered_set>

#include "common/error.hpp"
#include "graph/algorithms.hpp"

namespace sc::sim {

void validate_spec(const ClusterSpec& spec) {
  SC_CHECK(spec.num_devices > 0, "cluster needs at least one device");
  SC_CHECK(spec.device_mips > 0.0, "device capacity must be positive");
  SC_CHECK(spec.bandwidth > 0.0, "bandwidth must be positive");
  SC_CHECK(spec.source_rate > 0.0, "source rate must be positive");
  if (!spec.device_mips_each.empty()) {
    SC_CHECK(spec.device_mips_each.size() == spec.num_devices,
             "device_mips_each size " << spec.device_mips_each.size()
                                      << " != num_devices " << spec.num_devices);
    for (const double m : spec.device_mips_each) {
      SC_CHECK(m > 0.0, "every device capacity must be positive");
    }
  }
}

void validate_placement(const graph::StreamGraph& g, const ClusterSpec& spec,
                        const Placement& p) {
  SC_CHECK(p.size() == g.num_nodes(),
           "placement size " << p.size() << " != node count " << g.num_nodes());
  for (std::size_t v = 0; v < p.size(); ++v) {
    SC_CHECK(p[v] >= 0 && static_cast<std::size_t>(p[v]) < spec.num_devices,
             "node " << v << " placed on invalid device " << p[v]);
  }
}

Placement all_on_one(const graph::StreamGraph& g) {
  return Placement(g.num_nodes(), 0);
}

Placement round_robin(const graph::StreamGraph& g, std::size_t num_devices) {
  SC_CHECK(num_devices > 0, "need at least one device");
  Placement p(g.num_nodes(), 0);
  int d = 0;
  for (const graph::NodeId v : graph::topological_order(g)) {
    p[v] = d;
    d = (d + 1) % static_cast<int>(num_devices);
  }
  return p;
}

std::size_t devices_used(const Placement& p) {
  std::unordered_set<int> used(p.begin(), p.end());
  return used.size();
}

}  // namespace sc::sim
