#include "sim/fluid.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "analysis/validate.hpp"
#include "common/error.hpp"
#include "graph/algorithms.hpp"

namespace sc::sim {

namespace {

/// Reusable per-thread accumulation buffers for unit_bottleneck. Every call
/// used to allocate and zero-fill an O(D²) pairwise-link vector; with the
/// scratch, repeated evaluations on the same cluster spec are allocation-free
/// (RL training calls this millions of times). `links` holds a zero-on-exit
/// invariant: each call records which entries it dirtied in `touched` and
/// zeroes exactly those before returning, so resetting costs O(active links),
/// not O(D²).
struct BottleneckScratch {
  std::vector<double> cpu;
  std::vector<double> links;
  std::vector<std::size_t> touched;
};

BottleneckScratch& bottleneck_scratch() {
  thread_local BottleneckScratch scratch;
  return scratch;
}

}  // namespace

FluidSimulator::FluidSimulator(const graph::StreamGraph& g, const ClusterSpec& spec)
    : graph_(&g), spec_(spec), profile_(graph::compute_load_profile(g)) {
  validate_spec(spec);
  // Checked builds vet the simulator's inputs once at construction: the graph
  // contract (DAG, consistent adjacency, non-negative features) and the
  // derived load profile the throughput model sums over. Every subsequent
  // throughput()/latency() call trusts them.
  SC_VALIDATE_AT(Deep, analysis::validate(g));
  SC_VALIDATE_AT(Deep, analysis::validate(profile_, g));
}

FluidSimulator::FluidSimulator(const graph::StreamGraph& g, const ClusterSpec& spec,
                               const graph::LoadProfile& profile)
    : graph_(&g), spec_(spec), profile_(profile) {
  validate_spec(spec);
  SC_VALIDATE_AT(Deep, analysis::validate(g));
  SC_VALIDATE_AT(Deep, analysis::validate(profile_, g));
}

void FluidSimulator::rebind(const graph::StreamGraph& g, const ClusterSpec& spec) {
  graph_ = &g;
  spec_ = spec;
  validate_spec(spec);
  graph::compute_load_profile_into(g, profile_);
  SC_VALIDATE_AT(Deep, analysis::validate(g));
  SC_VALIDATE_AT(Deep, analysis::validate(profile_, g));
}

double FluidSimulator::unit_bottleneck(const Placement& p, std::vector<double>* device_cpu,
                                       std::vector<double>* link_traffic) const {
  const graph::StreamGraph& g = *graph_;
  validate_placement(g, spec_, p);

  BottleneckScratch& scratch = bottleneck_scratch();

  // Per-device CPU demand at unit source rate.
  std::vector<double>& cpu = scratch.cpu;
  cpu.assign(spec_.num_devices, 0.0);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    cpu[static_cast<std::size_t>(p[v])] += profile_.node_cpu[v];
  }

  // Cross-device traffic, aggregated per link (pairwise) or per NIC. Traffic
  // is non-negative, so an entry is dirty iff it is non-zero; a touched entry
  // never returns to zero and is recorded exactly once.
  std::vector<double>& links = scratch.links;
  std::vector<std::size_t>& touched = scratch.touched;
  const bool pairwise = spec_.link_model == LinkModel::PairwiseLinks;
  const std::size_t num_links =
      pairwise ? spec_.num_devices * spec_.num_devices : spec_.num_devices;
  if (links.size() < num_links) links.resize(num_links, 0.0);
  touched.clear();
  const auto add_traffic = [&links, &touched](std::size_t id, double t) {
    if (t == 0.0) return;
    if (links[id] == 0.0) touched.push_back(id);
    links[id] += t;
  };
  if (pairwise) {
    // Link id for unordered pair (a, b), a < b.
    for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
      const auto& c = g.edge(e);
      const int da = p[c.src];
      const int db = p[c.dst];
      if (da == db) continue;
      const std::size_t lo = static_cast<std::size_t>(std::min(da, db));
      const std::size_t hi = static_cast<std::size_t>(std::max(da, db));
      add_traffic(lo * spec_.num_devices + hi, profile_.edge_traffic[e]);
    }
  } else {
    // One NIC per device shared by all ingress + egress traffic.
    for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
      const auto& c = g.edge(e);
      const int da = p[c.src];
      const int db = p[c.dst];
      if (da == db) continue;
      add_traffic(static_cast<std::size_t>(da), profile_.edge_traffic[e]);
      add_traffic(static_cast<std::size_t>(db), profile_.edge_traffic[e]);
    }
  }

  double worst = 0.0;
  for (std::size_t d = 0; d < cpu.size(); ++d) {
    worst = std::max(worst, cpu[d] / spec_.mips_of(d));
  }
  for (const std::size_t id : touched) worst = std::max(worst, links[id] / spec_.bandwidth);

  if (device_cpu != nullptr) *device_cpu = cpu;
  if (link_traffic != nullptr) {
    link_traffic->assign(num_links, 0.0);
    for (const std::size_t id : touched) (*link_traffic)[id] = links[id];
  }
  // Restore the zero-on-exit invariant.
  for (const std::size_t id : touched) links[id] = 0.0;
  return worst;
}

double FluidSimulator::throughput(const Placement& p) const {
  const double bottleneck = unit_bottleneck(p);
  if (bottleneck <= 0.0) return spec_.source_rate;  // zero-load graph
  return std::min(spec_.source_rate, 1.0 / bottleneck);
}

double FluidSimulator::relative_throughput(const Placement& p) const {
  return throughput(p) / spec_.source_rate;
}

double FluidSimulator::latency(const Placement& p, const LatencyModel& model) const {
  const graph::StreamGraph& g = *graph_;
  validate_placement(g, spec_, p);

  // Utilizations at the sustained rate, for the queueing penalty.
  std::vector<double> cpu, links;
  const double bottleneck = unit_bottleneck(p, &cpu, &links);
  const double rate =
      bottleneck <= 0.0 ? spec_.source_rate : std::min(spec_.source_rate, 1.0 / bottleneck);

  const auto congestion = [&](double utilization) {
    if (!model.queueing) return 1.0;
    return 1.0 / std::max(1.0 - std::min(utilization, 0.999), 1e-3);
  };

  std::vector<double> device_factor(spec_.num_devices, 1.0);
  for (std::size_t d = 0; d < spec_.num_devices; ++d) {
    device_factor[d] = congestion(rate * cpu[d] / spec_.mips_of(d));
  }
  const bool pairwise = spec_.link_model == LinkModel::PairwiseLinks;
  const auto link_factor = [&](int da, int db) {
    if (pairwise) {
      const std::size_t lo = static_cast<std::size_t>(std::min(da, db));
      const std::size_t hi = static_cast<std::size_t>(std::max(da, db));
      return congestion(rate * links[lo * spec_.num_devices + hi] / spec_.bandwidth);
    }
    const double u = std::max(links[static_cast<std::size_t>(da)],
                              links[static_cast<std::size_t>(db)]);
    return congestion(rate * u / spec_.bandwidth);
  };

  // Longest-cost source->sink path by topological DP.
  std::vector<double> cost(g.num_nodes(), 0.0);
  double worst = 0.0;
  for (const graph::NodeId v : graph::topological_order(g)) {
    const std::size_t dev = static_cast<std::size_t>(p[v]);
    cost[v] += g.op(v).ipt / spec_.mips_of(dev) * device_factor[dev];
    worst = std::max(worst, cost[v]);
    for (const graph::EdgeId e : g.out_edges(v)) {
      const auto& c = g.edge(e);
      double edge_cost = 0.0;
      if (p[c.src] != p[c.dst]) {
        edge_cost = model.network_hop_seconds +
                    c.payload / spec_.bandwidth * link_factor(p[c.src], p[c.dst]);
      }
      cost[c.dst] = std::max(cost[c.dst], cost[v] + edge_cost);
    }
  }
  return worst;
}

PlacementReport FluidSimulator::report(const Placement& p) const {
  std::vector<double> cpu, links;
  const double bottleneck = unit_bottleneck(p, &cpu, &links);

  PlacementReport r;
  r.throughput = bottleneck <= 0.0 ? spec_.source_rate
                                   : std::min(spec_.source_rate, 1.0 / bottleneck);
  r.relative_throughput = r.throughput / spec_.source_rate;

  double cpu_peak = 0.0;
  for (std::size_t d = 0; d < cpu.size(); ++d) {
    cpu_peak = std::max(cpu_peak, cpu[d] / spec_.mips_of(d));
  }
  r.cpu_bottleneck = spec_.source_rate * cpu_peak;
  double net_peak = 0.0;
  for (const double t : links) net_peak = std::max(net_peak, t);
  r.net_bottleneck = spec_.source_rate * net_peak / spec_.bandwidth;

  r.devices_used = devices_used(p);

  // Utilization statistics at the achieved rate r* (paper's Fig. 7 analysis).
  {
    double sum = 0.0, sum_sq = 0.0;
    std::size_t used = 0;
    for (std::size_t d = 0; d < cpu.size(); ++d) {
      if (cpu[d] <= 0.0) continue;
      const double u = r.throughput * cpu[d] / spec_.mips_of(d);
      sum += u;
      sum_sq += u * u;
      ++used;
    }
    if (used > 0) {
      r.avg_cpu_utilization = sum / static_cast<double>(used);
      const double var =
          std::max(0.0, sum_sq / static_cast<double>(used) -
                            r.avg_cpu_utilization * r.avg_cpu_utilization);
      r.cpu_utilization_stddev = std::sqrt(var);
    }
  }
  {
    double sum = 0.0, sum_sq = 0.0;
    std::size_t active = 0;
    for (const double t : links) {
      if (t <= 0.0) continue;
      const double u = r.throughput * t / spec_.bandwidth;
      sum += u;
      sum_sq += u * u;
      ++active;
    }
    if (active > 0) {
      r.avg_bw_utilization = sum / static_cast<double>(active);
      const double var = std::max(
          0.0, sum_sq / static_cast<double>(active) - r.avg_bw_utilization * r.avg_bw_utilization);
      r.bw_utilization_stddev = std::sqrt(var);
    }
  }
  r.latency_seconds = latency(p);
  return r;
}

}  // namespace sc::sim
