// FluidSimulator: analytic steady-state throughput of a placed stream graph.
//
// All operator and channel rates scale linearly with the sustained source
// rate r (see graph/rates.hpp), so each resource imposes a linear cap:
//
//   device d:          r · Σ_{v on d} cpu_v        ≤ device_mips
//   link/NIC l:        r · Σ_{e crossing l} traf_e ≤ bandwidth
//
// The maximum sustainable source rate is r* = min(I, min_resource cap/demand)
// and the relative throughput (the RL reward) is r*/I ∈ (0, 1]. This is the
// same first-order backpressure physics CEPSim models; the EventSimulator
// cross-validates it tick by tick.
//
// This class precomputes the unit-rate load profile once per graph, so a
// single throughput() call is O(V + E) — cheap enough for the millions of
// reward evaluations RL training performs.
#pragma once

#include <vector>

#include "graph/rates.hpp"
#include "graph/stream_graph.hpp"
#include "sim/cluster.hpp"

namespace sc::sim {

/// Per-placement resource diagnostics (used by the excess-device analysis).
struct PlacementReport {
  double throughput = 0.0;           ///< sustained source rate (tuples/s)
  double relative_throughput = 0.0;  ///< throughput / I, in (0, 1]
  double cpu_bottleneck = 0.0;       ///< max device CPU demand at rate I / capacity
  double net_bottleneck = 0.0;       ///< max link demand at rate I / capacity
  std::size_t devices_used = 0;
  double avg_cpu_utilization = 0.0;  ///< mean CPU utilization of used devices at r*
  double cpu_utilization_stddev = 0.0;
  double avg_bw_utilization = 0.0;   ///< mean utilization of active links at r*
  double bw_utilization_stddev = 0.0;
  double latency_seconds = 0.0;      ///< end-to-end critical-path latency at r*
};

/// Knobs of the latency model (see FluidSimulator::latency).
struct LatencyModel {
  double network_hop_seconds = 2e-4;  ///< per cross-device hop base cost
  bool queueing = true;               ///< scale service times by 1/(1 - rho)
};

class FluidSimulator {
public:
  /// Borrows `g`; the graph must outlive the simulator. The rvalue overload
  /// is deleted to reject temporaries at compile time.
  FluidSimulator(const graph::StreamGraph& g, const ClusterSpec& spec);
  FluidSimulator(graph::StreamGraph&&, const ClusterSpec&) = delete;

  /// Profile-sharing constructor: copies a caller-precomputed load profile
  /// instead of recomputing it (compute_load_profile is deterministic, so the
  /// result is identical — this just removes a duplicate propagation when the
  /// caller already holds the profile, e.g. rl::GraphContext).
  FluidSimulator(const graph::StreamGraph& g, const ClusterSpec& spec,
                 const graph::LoadProfile& profile);
  FluidSimulator(graph::StreamGraph&&, const ClusterSpec&, const graph::LoadProfile&) = delete;

  /// Cheap re-targeting: points the simulator at a different graph/spec pair,
  /// recomputing the load profile into the existing storage. Equivalent to
  /// constructing FluidSimulator(g, spec) but reuses this instance's profile
  /// vectors, so cycling a simulator across graphs is allocation-light.
  void rebind(const graph::StreamGraph& g, const ClusterSpec& spec);
  void rebind(graph::StreamGraph&&, const ClusterSpec&) = delete;

  /// Max sustainable source rate under placement p, capped at spec.source_rate.
  double throughput(const Placement& p) const;

  /// throughput(p) / source_rate — the paper's reward r(Gy) = T(Gy)/I(Gx).
  double relative_throughput(const Placement& p) const;

  /// Full diagnostics (utilization statistics, bottlenecks, latency).
  PlacementReport report(const Placement& p) const;

  /// End-to-end tuple latency: the most expensive source->sink path, where a
  /// node costs its service time (ipt / device capacity) and a cross-device
  /// edge costs transmission (payload / bandwidth) plus a per-hop constant.
  /// With model.queueing, each resource's cost is scaled by 1 / (1 - rho)
  /// using its utilization at the sustained rate — the standard M/M/1-style
  /// congestion penalty, so latency diverges as the placement approaches its
  /// bottleneck.
  double latency(const Placement& p, const LatencyModel& model = {}) const;

  const ClusterSpec& spec() const { return spec_; }
  const graph::LoadProfile& profile() const { return profile_; }
  const graph::StreamGraph& graph() const { return *graph_; }

private:
  /// Max of {device demand/cap, link demand/cap} at unit source rate.
  double unit_bottleneck(const Placement& p, std::vector<double>* device_cpu = nullptr,
                         std::vector<double>* link_traffic = nullptr) const;

  const graph::StreamGraph* graph_;
  ClusterSpec spec_;
  graph::LoadProfile profile_;
};

}  // namespace sc::sim
