// EventSimulator: discrete-time queue-level simulation of a placed stream
// graph, used to validate the FluidSimulator's analytic model.
//
// Each tick of length dt:
//   1. sources receive I*dt new tuples;
//   2. every device processes its operators' queues under a proportional
//      fair share of its instruction budget (device_mips * dt);
//   3. emitted tuples move instantly between co-located operators, and
//      through finite-bandwidth links otherwise (again proportional share);
//   4. tuples processed by sink operators count toward throughput.
//
// After a warm-up long enough to fill the pipeline, the measured sink rate
// converges to the fluid bound; tests assert agreement within tolerance.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/rates.hpp"
#include "graph/stream_graph.hpp"
#include "sim/cluster.hpp"

namespace sc::sim {

struct EventSimConfig {
  double dt = 0.01;                ///< tick length in seconds
  std::size_t warmup_ticks = 0;    ///< 0 = auto (scaled to graph depth)
  std::size_t measure_ticks = 400; ///< measurement window length
};

class EventSimulator {
public:
  /// Borrows `g`; the graph must outlive the simulator.
  EventSimulator(const graph::StreamGraph& g, const ClusterSpec& spec,
                 EventSimConfig cfg = {});
  EventSimulator(graph::StreamGraph&&, const ClusterSpec&, EventSimConfig = {}) = delete;

  /// Measured steady-state throughput as an equivalent source rate (tuples/s).
  double throughput(const Placement& p) const;

  /// throughput / I — directly comparable to FluidSimulator.
  double relative_throughput(const Placement& p) const;

private:
  const graph::StreamGraph* graph_;
  ClusterSpec spec_;
  EventSimConfig cfg_;
  graph::LoadProfile profile_;
  std::vector<graph::NodeId> topo_;
  double unit_sink_rate_ = 0.0;  ///< Σ_sinks node_rate at unit source rate
};

}  // namespace sc::sim
