// Cluster model and placement types shared by the simulators.
//
// The paper's environment (Sec. V): a homogeneous cluster, device capacity
// 1.25e3 MIPS, inter-device link bandwidth 1000/1500 Mbps, a fixed source
// tuple rate I. A placement assigns every operator to one device.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/stream_graph.hpp"

namespace sc::sim {

/// How cross-device traffic contends for bandwidth.
enum class LinkModel {
  PairwiseLinks,  ///< a dedicated full-duplex link per device pair (paper's wording)
  DeviceNic,      ///< each device has one NIC shared by all its cross traffic
};

struct ClusterSpec {
  std::size_t num_devices = 10;
  double device_mips = 1.25e9;  ///< instructions per second per device
  double bandwidth = 1.25e8;    ///< bytes per second per link (or per NIC)
  double source_rate = 1e4;     ///< source tuple rate I (tuples/s)
  LinkModel link_model = LinkModel::PairwiseLinks;

  /// Heterogeneous-cluster extension (the paper's stated future work):
  /// when non-empty, device d has capacity device_mips_each[d] instead of
  /// device_mips. Size must equal num_devices.
  std::vector<double> device_mips_each;

  /// Capacity of device d under either configuration.
  double mips_of(std::size_t d) const {
    return device_mips_each.empty() ? device_mips : device_mips_each[d];
  }
  /// Aggregate compute capacity of the cluster.
  double total_mips() const {
    if (device_mips_each.empty()) {
      return device_mips * static_cast<double>(num_devices);
    }
    double total = 0.0;
    for (const double m : device_mips_each) total += m;
    return total;
  }
  bool heterogeneous() const { return !device_mips_each.empty(); }
};

/// Throws sc::Error unless the spec itself is self-consistent.
void validate_spec(const ClusterSpec& spec);

/// Device id per operator. Values must lie in [0, num_devices).
using Placement = std::vector<int>;

/// Throws sc::Error unless `p` is a valid placement of `g` on `spec`.
void validate_placement(const graph::StreamGraph& g, const ClusterSpec& spec,
                        const Placement& p);

/// Places every operator on device 0 (the trivial all-on-one placement).
Placement all_on_one(const graph::StreamGraph& g);

/// Round-robin placement in topological order — a cheap balanced baseline.
Placement round_robin(const graph::StreamGraph& g, std::size_t num_devices);

/// Number of distinct devices used by a placement.
std::size_t devices_used(const Placement& p);

}  // namespace sc::sim
