// Application topology layer: a Storm/Flink-style description of stream
// applications (spouts, bolts, parallelism, stream groupings) that compiles
// down to the instance-level StreamGraph the allocator operates on.
//
// This is the bridge between how practitioners describe streaming jobs and
// the paper's operator-graph abstraction: an operator with parallelism p
// becomes p instances; a shuffle-grouped stream splits each producer's
// output evenly across consumer instances, a broadcast stream duplicates it
// to all of them (exactly the rate_factor semantics of graph::Channel).
#pragma once

#include <string>
#include <vector>

#include "graph/stream_graph.hpp"

namespace sc::apps {

enum class Grouping {
  Shuffle,    ///< each producer instance splits its stream across consumers
  Broadcast,  ///< each producer instance sends the full stream to every consumer
};

/// Declarative description of one logical operator.
struct OperatorDecl {
  std::string name;
  double instructions_per_tuple = 1.0;
  double selectivity = 1.0;      ///< output tuples per input tuple
  std::size_t parallelism = 1;   ///< number of instances
  bool is_spout = false;         ///< tuple source
};

/// Declarative description of one stream (logical edge).
struct StreamDecl {
  std::string from;
  std::string to;
  double payload_bytes = 1.0;
  Grouping grouping = Grouping::Shuffle;
};

/// Fluent builder for application topologies.
class TopologyBuilder {
public:
  explicit TopologyBuilder(std::string name) : name_(std::move(name)) {}

  /// Declares a tuple source with `parallelism` instances.
  TopologyBuilder& spout(const std::string& name, double ipt,
                         std::size_t parallelism = 1);

  /// Declares a processing operator.
  TopologyBuilder& bolt(const std::string& name, double ipt, double selectivity = 1.0,
                        std::size_t parallelism = 1);

  /// Subscribes `to` to `from`'s output stream with shuffle grouping.
  TopologyBuilder& shuffle(const std::string& from, const std::string& to,
                           double payload_bytes);

  /// Subscribes `to` with broadcast grouping (full stream to every instance).
  TopologyBuilder& broadcast(const std::string& from, const std::string& to,
                             double payload_bytes);

  /// Expands parallelism into the instance-level stream graph.
  /// Throws sc::Error on duplicate/unknown operator names or cyclic streams.
  graph::StreamGraph build() const;

  /// Instance ids of a logical operator in the built graph (valid for the
  /// most recent build() call ordering, which is deterministic).
  std::vector<graph::NodeId> instances_of(const std::string& name) const;

  const std::string& name() const { return name_; }
  const std::vector<OperatorDecl>& operators() const { return operators_; }
  const std::vector<StreamDecl>& streams() const { return streams_; }

private:
  std::size_t index_of(const std::string& name) const;

  std::string name_;
  std::vector<OperatorDecl> operators_;
  std::vector<StreamDecl> streams_;
};

// ---- Canonical applications (the domains the paper's introduction cites) ----

/// Classic streaming word count: sentences -> split -> count -> store.
TopologyBuilder word_count(std::size_t parallelism = 4);

/// Telecom fraud detection: CDR ingest fans out to enrichment, a broadcast
/// model-update stream, scoring, and alerting/archival sinks.
TopologyBuilder fraud_detection(std::size_t parallelism = 4);

/// Transportation/IoT telemetry: sensor ingest -> parse -> window
/// aggregation per region -> anomaly detection + dashboard + cold storage.
TopologyBuilder iot_telemetry(std::size_t parallelism = 4);

}  // namespace sc::apps
