#include "apps/topology.hpp"

#include <unordered_map>

#include "common/error.hpp"

namespace sc::apps {

TopologyBuilder& TopologyBuilder::spout(const std::string& name, double ipt,
                                        std::size_t parallelism) {
  SC_CHECK(parallelism >= 1, "parallelism must be at least 1");
  for (const auto& op : operators_) {
    SC_CHECK(op.name != name, "duplicate operator name '" << name << "'");
  }
  operators_.push_back(OperatorDecl{name, ipt, 1.0, parallelism, /*is_spout=*/true});
  return *this;
}

TopologyBuilder& TopologyBuilder::bolt(const std::string& name, double ipt,
                                       double selectivity, std::size_t parallelism) {
  SC_CHECK(parallelism >= 1, "parallelism must be at least 1");
  for (const auto& op : operators_) {
    SC_CHECK(op.name != name, "duplicate operator name '" << name << "'");
  }
  operators_.push_back(OperatorDecl{name, ipt, selectivity, parallelism, false});
  return *this;
}

TopologyBuilder& TopologyBuilder::shuffle(const std::string& from, const std::string& to,
                                          double payload_bytes) {
  streams_.push_back(StreamDecl{from, to, payload_bytes, Grouping::Shuffle});
  return *this;
}

TopologyBuilder& TopologyBuilder::broadcast(const std::string& from,
                                            const std::string& to,
                                            double payload_bytes) {
  streams_.push_back(StreamDecl{from, to, payload_bytes, Grouping::Broadcast});
  return *this;
}

std::size_t TopologyBuilder::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < operators_.size(); ++i) {
    if (operators_[i].name == name) return i;
  }
  SC_CHECK(false, "unknown operator '" << name << "' in topology '" << name_ << "'");
  return 0;
}

graph::StreamGraph TopologyBuilder::build() const {
  SC_CHECK(!operators_.empty(), "topology '" << name_ << "' has no operators");

  graph::GraphBuilder b(name_);
  // Instances are laid out operator by operator, in declaration order.
  std::vector<graph::NodeId> first_instance(operators_.size());
  graph::NodeId next = 0;
  for (std::size_t i = 0; i < operators_.size(); ++i) {
    first_instance[i] = next;
    for (std::size_t k = 0; k < operators_[i].parallelism; ++k) {
      b.add_node(operators_[i].instructions_per_tuple, operators_[i].selectivity);
      ++next;
    }
  }

  // A producer instance talking to a shuffle-grouped consumer splits its
  // stream evenly across consumer instances; per instance-pair payload is
  // the logical per-tuple payload (each tuple travels one pair).
  for (const StreamDecl& s : streams_) {
    const std::size_t from = index_of(s.from);
    const std::size_t to = index_of(s.to);
    SC_CHECK(from != to, "operator '" << s.from << "' cannot subscribe to itself");
    const std::size_t pf = operators_[from].parallelism;
    const std::size_t pt = operators_[to].parallelism;
    const double rate_factor =
        s.grouping == Grouping::Shuffle ? 1.0 / static_cast<double>(pt) : 1.0;
    for (std::size_t i = 0; i < pf; ++i) {
      for (std::size_t j = 0; j < pt; ++j) {
        b.add_edge(first_instance[from] + graph::checked_node_id(i),
                   first_instance[to] + graph::checked_node_id(j),
                   s.payload_bytes, rate_factor);
      }
    }
  }
  return b.build();  // validates acyclicity
}

std::vector<graph::NodeId> TopologyBuilder::instances_of(const std::string& name) const {
  const std::size_t target = index_of(name);
  graph::NodeId base = 0;
  for (std::size_t i = 0; i < target; ++i) {
    base += graph::checked_node_id(operators_[i].parallelism);
  }
  std::vector<graph::NodeId> ids(operators_[target].parallelism);
  for (std::size_t k = 0; k < ids.size(); ++k) {
    ids[k] = base + graph::checked_node_id(k);
  }
  return ids;
}

// ---- Canonical applications -------------------------------------------------

TopologyBuilder word_count(std::size_t p) {
  TopologyBuilder t("word_count");
  t.spout("sentences", /*ipt=*/2e4, /*parallelism=*/1)
      .bolt("split", /*ipt=*/6e4, /*selectivity=*/8.0, p)   // sentence -> words
      .bolt("count", /*ipt=*/3e4, /*selectivity=*/0.2, p)   // windowed counts
      .bolt("store", /*ipt=*/1e4, /*selectivity=*/1.0, 1);
  t.shuffle("sentences", "split", /*payload=*/400.0)
      .shuffle("split", "count", /*payload=*/24.0)
      .shuffle("count", "store", /*payload=*/48.0);
  return t;
}

TopologyBuilder fraud_detection(std::size_t p) {
  TopologyBuilder t("fraud_detection");
  t.spout("cdr_ingest", 3e4, 2)                     // call-detail records
      .bolt("parse", 5e4, 1.0, p)
      .bolt("enrich", 1.2e5, 1.0, p)                // customer/location join
      .bolt("model_update", 6e4, 0.01, 1)           // slow control stream
      .bolt("score", 1.5e5, 1.0, p)                 // per-call fraud score
      .bolt("alert", 4e4, 0.02, 1)                  // rare positives
      .bolt("archive", 2e4, 1.0, 2);
  t.shuffle("cdr_ingest", "parse", 600.0)
      .shuffle("parse", "enrich", 300.0)
      .shuffle("enrich", "score", 500.0)
      .shuffle("parse", "model_update", 300.0)
      .broadcast("model_update", "score", 4000.0)   // model pushed to all scorers
      .shuffle("score", "alert", 200.0)
      .shuffle("score", "archive", 500.0);
  return t;
}

TopologyBuilder iot_telemetry(std::size_t p) {
  TopologyBuilder t("iot_telemetry");
  t.spout("sensors", 1e4, 2)
      .bolt("parse", 4e4, 1.0, p)
      .bolt("window_agg", 8e4, 0.1, p)              // per-region rollups
      .bolt("anomaly", 1.8e5, 0.05, p)
      .bolt("dashboard", 3e4, 1.0, 1)
      .bolt("cold_store", 1.5e4, 1.0, 2);
  t.shuffle("sensors", "parse", 250.0)
      .shuffle("parse", "window_agg", 200.0)
      .shuffle("window_agg", "anomaly", 350.0)
      .shuffle("window_agg", "dashboard", 350.0)
      .shuffle("parse", "cold_store", 250.0)
      .shuffle("anomaly", "dashboard", 120.0);
  return t;
}

}  // namespace sc::apps
