// Evaluation statistics used throughout the paper's figures and tables:
// CDF curves, Area-Under-Curve (smaller = better), relative improvement,
// box-plot quartiles and histograms.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sc::metrics {

/// Empirical CDF of a sample (kept as the sorted sample).
class Cdf {
public:
  explicit Cdf(std::vector<double> values);

  const std::vector<double>& sorted() const { return sorted_; }
  std::size_t size() const { return sorted_.size(); }
  double min() const { return sorted_.front(); }
  double max() const { return sorted_.back(); }

  /// F(x) = fraction of samples <= x.
  double at(double x) const;

  /// Inverse CDF: smallest sample with F >= q (q in [0, 1]).
  double quantile(double q) const;

  /// Area under the CDF over [0, x_max]. Smaller means mass concentrated at
  /// higher values — the paper's headline comparison metric (Table I).
  double auc(double x_max) const;

private:
  std::vector<double> sorted_;
};

/// Relative AUC improvement of `candidate` w.r.t. `reference` (positive when
/// the candidate is better, i.e. has smaller AUC). Both AUCs are computed
/// over a shared [0, x_max] domain.
double improvement(const Cdf& reference, const Cdf& candidate, double x_max);

/// Five-number summary for box plots (Fig. 8).
struct BoxStats {
  double min = 0, q1 = 0, median = 0, q3 = 0, max = 0;
  double mean = 0;
  std::size_t count = 0;
};
BoxStats box_stats(const std::vector<double>& values);

/// Fixed-width histogram over [lo, hi) with `bins` buckets; values outside
/// clamp into the boundary buckets.
struct Histogram {
  double lo = 0, hi = 1;
  std::vector<std::size_t> counts;
};
Histogram histogram(const std::vector<double>& values, double lo, double hi,
                    std::size_t bins);

/// Mean and (population) standard deviation.
struct MeanStd {
  double mean = 0;
  double stddev = 0;
};
MeanStd mean_std(const std::vector<double>& values);

/// Kendall's tau-b rank correlation between two paired samples (ties handled).
/// +1 = identical ranking, -1 = reversed, 0 = unrelated. Used to quantify
/// rank agreement between the fluid reward oracle and the event simulator.
double kendall_tau(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace sc::metrics
