// Text rendering of the paper's tables and figures: aligned tables, CDF
// series (so bench output mirrors the paper's plots), histograms, and CSV
// dumps for external plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "metrics/stats.hpp"

namespace sc::metrics {

/// Simple aligned text table.
class Table {
public:
  explicit Table(std::vector<std::string> header);
  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

  static std::string fmt(double v, int precision = 2);
  static std::string pct(double v, int precision = 0);  ///< 0.45 -> "45%"

private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// One named CDF series (e.g. one allocator's throughputs).
struct Series {
  std::string name;
  std::vector<double> values;
};

/// Prints each series' CDF sampled at fixed quantiles plus its AUC — the
/// textual analogue of the paper's CDF figures. `x_max` is shared (0 = auto).
void print_cdf_comparison(std::ostream& os, const std::vector<Series>& series,
                          double x_max = 0.0);

/// AUC + improvement-vs-reference table (reference = first series).
void print_auc_table(std::ostream& os, const std::vector<Series>& series,
                     double x_max = 0.0);

/// Text histogram with proportional bars.
void print_histogram(std::ostream& os, const Histogram& h, const std::string& label);

/// Writes "name,value" rows per series to a CSV file for external plotting.
void write_series_csv(const std::string& path, const std::vector<Series>& series);

/// Shared AUC domain: max over all series (the paper clips at the largest
/// observed throughput).
double common_x_max(const std::vector<Series>& series);

}  // namespace sc::metrics
