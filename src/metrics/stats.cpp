#include "metrics/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace sc::metrics {

Cdf::Cdf(std::vector<double> values) : sorted_(std::move(values)) {
  SC_CHECK(!sorted_.empty(), "CDF of an empty sample");
  std::sort(sorted_.begin(), sorted_.end());
}

double Cdf::at(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double Cdf::quantile(double q) const {
  SC_CHECK(q >= 0.0 && q <= 1.0, "quantile must lie in [0, 1]");
  if (q <= 0.0) return sorted_.front();
  const std::size_t idx = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted_.size()))) - 1;
  return sorted_[std::min(idx, sorted_.size() - 1)];
}

double Cdf::auc(double x_max) const {
  SC_CHECK(x_max > 0.0, "AUC domain must be positive");
  // The empirical CDF is a right-continuous step function; integrate exactly.
  double area = 0.0;
  double prev_x = 0.0;
  const double n = static_cast<double>(sorted_.size());
  for (std::size_t i = 0; i < sorted_.size(); ++i) {
    const double x = std::min(sorted_[i], x_max);
    if (x > prev_x) {
      area += (x - prev_x) * (static_cast<double>(i) / n);
      prev_x = x;
    }
    if (sorted_[i] >= x_max) break;
  }
  if (prev_x < x_max) area += (x_max - prev_x) * at(prev_x);
  return area;
}

double improvement(const Cdf& reference, const Cdf& candidate, double x_max) {
  const double ref = reference.auc(x_max);
  SC_CHECK(ref > 0.0, "reference AUC must be positive");
  return (ref - candidate.auc(x_max)) / ref;
}

BoxStats box_stats(const std::vector<double>& values) {
  SC_CHECK(!values.empty(), "box stats of an empty sample");
  const Cdf cdf{std::vector<double>(values)};
  BoxStats b;
  b.min = cdf.min();
  b.q1 = cdf.quantile(0.25);
  b.median = cdf.quantile(0.5);
  b.q3 = cdf.quantile(0.75);
  b.max = cdf.max();
  b.count = values.size();
  double sum = 0.0;
  for (const double v : values) sum += v;
  b.mean = sum / static_cast<double>(values.size());
  return b;
}

Histogram histogram(const std::vector<double>& values, double lo, double hi,
                    std::size_t bins) {
  SC_CHECK(bins > 0, "histogram needs at least one bin");
  SC_CHECK(hi > lo, "histogram range must be non-empty");
  Histogram h;
  h.lo = lo;
  h.hi = hi;
  h.counts.assign(bins, 0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (const double v : values) {
    const double clamped = std::clamp(v, lo, hi);
    std::size_t bin = static_cast<std::size_t>((clamped - lo) / width);
    if (bin >= bins) bin = bins - 1;
    ++h.counts[bin];
  }
  return h;
}

double kendall_tau(const std::vector<double>& a, const std::vector<double>& b) {
  SC_CHECK(a.size() == b.size(), "kendall_tau needs paired samples");
  SC_CHECK(a.size() >= 2, "kendall_tau needs at least two pairs");
  // O(n^2) tau-b; sample sizes here are small (candidate placements).
  long concordant = 0, discordant = 0, ties_a = 0, ties_b = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = i + 1; j < a.size(); ++j) {
      const double da = a[i] - a[j];
      const double db = b[i] - b[j];
      if (da == 0.0 && db == 0.0) continue;  // tied in both: excluded
      if (da == 0.0) {
        ++ties_a;
      } else if (db == 0.0) {
        ++ties_b;
      } else if ((da > 0) == (db > 0)) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  const double n0a = static_cast<double>(concordant + discordant + ties_a);
  const double n0b = static_cast<double>(concordant + discordant + ties_b);
  const double denom = std::sqrt(n0a * n0b);
  if (denom == 0.0) return 0.0;
  return static_cast<double>(concordant - discordant) / denom;
}

MeanStd mean_std(const std::vector<double>& values) {
  SC_CHECK(!values.empty(), "mean of an empty sample");
  MeanStd ms;
  for (const double v : values) ms.mean += v;
  ms.mean /= static_cast<double>(values.size());
  double var = 0.0;
  for (const double v : values) var += (v - ms.mean) * (v - ms.mean);
  ms.stddev = std::sqrt(var / static_cast<double>(values.size()));
  return ms;
}

}  // namespace sc::metrics
