#include "metrics/report.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace sc::metrics {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  SC_CHECK(cells.size() == header_.size(), "row width does not match header");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c])) << row[c]
         << (c + 1 < row.size() ? " | " : " |");
    }
    os << '\n';
  };
  print_row(header_);
  os << '|';
  for (std::size_t c = 0; c < width.size(); ++c) {
    os << std::string(width[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::pct(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v * 100.0 << '%';
  return os.str();
}

double common_x_max(const std::vector<Series>& series) {
  double x = 0.0;
  for (const Series& s : series) {
    for (const double v : s.values) x = std::max(x, v);
  }
  return x > 0.0 ? x : 1.0;
}

void print_cdf_comparison(std::ostream& os, const std::vector<Series>& series,
                          double x_max) {
  SC_CHECK(!series.empty(), "no series to compare");
  if (x_max <= 0.0) x_max = common_x_max(series);

  Table t({"method", "p10", "p25", "p50", "p75", "p90", "AUC(v)"});
  for (const Series& s : series) {
    const Cdf cdf{std::vector<double>(s.values)};
    t.add_row({s.name, Table::fmt(cdf.quantile(0.10), 1), Table::fmt(cdf.quantile(0.25), 1),
               Table::fmt(cdf.quantile(0.50), 1), Table::fmt(cdf.quantile(0.75), 1),
               Table::fmt(cdf.quantile(0.90), 1), Table::fmt(cdf.auc(x_max), 1)});
  }
  os << "Throughput CDF comparison (higher quantiles / smaller AUC = better):\n";
  t.print(os);
}

void print_auc_table(std::ostream& os, const std::vector<Series>& series, double x_max) {
  SC_CHECK(!series.empty(), "no series to compare");
  if (x_max <= 0.0) x_max = common_x_max(series);

  const Cdf ref{std::vector<double>(series.front().values)};
  Table t({"method", "AUC", "Imp. wrt " + series.front().name});
  for (std::size_t i = 0; i < series.size(); ++i) {
    const Cdf cdf{std::vector<double>(series[i].values)};
    const double auc = cdf.auc(x_max);
    t.add_row({series[i].name, Table::fmt(auc, 1),
               i == 0 ? "-" : Table::pct(improvement(ref, cdf, x_max))});
  }
  t.print(os);
}

void print_histogram(std::ostream& os, const Histogram& h, const std::string& label) {
  os << label << '\n';
  std::size_t max_count = 1;
  for (const std::size_t c : h.counts) max_count = std::max(max_count, c);
  const double width = (h.hi - h.lo) / static_cast<double>(h.counts.size());
  for (std::size_t b = 0; b < h.counts.size(); ++b) {
    const double lo = h.lo + width * static_cast<double>(b);
    const std::size_t bar = h.counts[b] * 40 / max_count;
    os << "  [" << std::setw(8) << Table::fmt(lo, 2) << ", " << std::setw(8)
       << Table::fmt(lo + width, 2) << ") " << std::setw(6) << h.counts[b] << ' '
       << std::string(bar, '#') << '\n';
  }
}

void write_series_csv(const std::string& path, const std::vector<Series>& series) {
  std::ofstream os(path);
  SC_CHECK(os.good(), "cannot open '" << path << "' for writing");
  os << "method,value\n" << std::setprecision(17);
  for (const Series& s : series) {
    for (const double v : s.values) os << s.name << ',' << v << '\n';
  }
  // Flush before checking so buffered-write failures (disk full, quota)
  // throw here instead of vanishing in the destructor.
  os.flush();
  SC_CHECK(os.good(), "write to '" << path << "' failed (disk full or I/O error?)");
}

}  // namespace sc::metrics
