#include "common/profile.hpp"

#include <atomic>

#include "common/error.hpp"

namespace sc::prof {

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<std::uint64_t> g_nanos[kNumPhases];
std::atomic<std::uint64_t> g_calls[kNumPhases];

}  // namespace

std::string_view phase_name(Phase p) {
  switch (p) {
    case Phase::Encode: return "encode";
    case Phase::Sample: return "sample";
    case Phase::Contract: return "contract";
    case Phase::Partition: return "partition";
    case Phase::Simulate: return "simulate";
    case Phase::Backward: return "backward";
    case Phase::kCount: break;
  }
  SC_CHECK(false, "invalid profile phase");
  return {};
}

bool set_enabled(bool enabled) {
  return g_enabled.exchange(enabled, std::memory_order_relaxed);
}

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

Snapshot snapshot() {
  Snapshot s;
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    s.phase[i].nanos = g_nanos[i].load(std::memory_order_relaxed);
    s.phase[i].calls = g_calls[i].load(std::memory_order_relaxed);
  }
  return s;
}

void reset() {
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    g_nanos[i].store(0, std::memory_order_relaxed);
    g_calls[i].store(0, std::memory_order_relaxed);
  }
}

void record(Phase p, std::uint64_t nanos) {
  const std::size_t i = static_cast<std::size_t>(p);
  g_nanos[i].fetch_add(nanos, std::memory_order_relaxed);
  g_calls[i].fetch_add(1, std::memory_order_relaxed);
}

}  // namespace sc::prof
