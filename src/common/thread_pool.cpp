#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace sc {

namespace {
// Desired size of the global pool (0 = hardware_concurrency) and whether the
// pool has been constructed; configure_global only works before construction.
std::atomic<std::size_t> g_global_threads{0};
std::atomic<bool> g_global_built{false};
thread_local bool t_in_worker = false;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait() {
  std::exception_ptr err;
  {
    MutexLock lock(mutex_);
    cv_done_.wait(mutex_, [this]() SC_REQUIRES(mutex_) { return in_flight_ == 0; });
    if (first_error_) {
      err = first_error_;
      first_error_ = nullptr;
    }
  }
  if (err) std::rethrow_exception(err);
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t workers = workers_.size();
  if (n <= 1 || workers <= 1 || in_worker()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Chunked static schedule: enough chunks for balance, few enough to
  // keep queue overhead negligible.
  const std::size_t chunks = std::min(n, workers * 4);
  const std::size_t base = n / chunks;
  const std::size_t extra = n % chunks;
  std::size_t start = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t len = base + (c < extra ? 1 : 0);
    const std::size_t begin = start;
    const std::size_t end = start + len;
    start = end;
    submit([&fn, begin, end] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    });
  }
  wait();
}

ThreadPool& ThreadPool::global() {
  g_global_built.store(true);
  static ThreadPool pool(g_global_threads.load());
  return pool;
}

bool ThreadPool::configure_global(std::size_t threads) {
  if (g_global_built.load()) return false;
  g_global_threads.store(threads);
  return true;
}

bool ThreadPool::in_worker() { return t_in_worker; }

void ThreadPool::worker_loop() {
  t_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      cv_task_.wait(mutex_,
                    [this]() SC_REQUIRES(mutex_) { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      MutexLock lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      MutexLock lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) cv_done_.notify_all();
    }
  }
}

}  // namespace sc
