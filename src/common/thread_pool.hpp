// Minimal work-stealing-free thread pool with a parallel_for helper.
//
// Used to fan out simulator evaluations, dataset scoring and batched
// linear algebra. Tasks must not throw across the pool boundary; any
// exception is captured and rethrown on wait().
//
// Lock discipline (compiler-checked under Clang, DESIGN.md §10): all queue
// and completion state is guarded by `mutex_`; the two condition variables
// wait on it through sc::CondVar. Worker threads and submitters only touch
// the guarded fields inside sc::MutexLock scopes.
#pragma once

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"

namespace sc {

class ThreadPool {
public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task. Returns immediately.
  void submit(std::function<void()> task) SC_EXCLUDES(mutex_);

  /// Block until all submitted tasks have finished. Rethrows the first
  /// captured task exception, if any.
  void wait() SC_EXCLUDES(mutex_);

  /// Run fn(i) for i in [0, n) across the pool, blocking until done.
  /// Falls back to serial execution for tiny n, and when called from a pool
  /// worker thread (a nested wait() on the owning pool would deadlock).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn)
      SC_EXCLUDES(mutex_);

  /// Process-wide shared pool (lazily constructed).
  static ThreadPool& global();

  /// Sizes the global pool before its first use (0 = hardware_concurrency).
  /// Returns false (and changes nothing) once global() has been constructed.
  static bool configure_global(std::size_t threads);

  /// True when the calling thread is a worker of any ThreadPool.
  static bool in_worker();

private:
  void worker_loop() SC_EXCLUDES(mutex_);

  /// Immutable after construction (the vector is filled in the constructor
  /// before any thread can observe the pool) — deliberately unguarded.
  std::vector<std::thread> workers_;

  Mutex mutex_;
  CondVar cv_task_;
  CondVar cv_done_;
  std::deque<std::function<void()>> queue_ SC_GUARDED_BY(mutex_);
  std::size_t in_flight_ SC_GUARDED_BY(mutex_) = 0;
  bool stop_ SC_GUARDED_BY(mutex_) = false;
  std::exception_ptr first_error_ SC_GUARDED_BY(mutex_);
};

}  // namespace sc
