// LatencyHistogram: log-bucketed latency distribution, mergeable across
// threads, with percentile queries exact to within the bucket resolution.
//
// Layout follows the HdrHistogram idea: values (nanoseconds) below
// 2^(kSubBits+1) land in exact unit-width buckets; above that, each octave
// is split into 2^kSubBits geometric sub-buckets, so every recorded value is
// over-estimated by at most a factor of 1 + 2^-kSubBits (~3.1% at the
// default kSubBits = 5). Percentiles report the upper edge of the bucket
// holding the requested rank, so p50/p95/p99 are exact within that bound.
//
// record() is lock-free (one relaxed fetch_add per bucket plus count/sum
// updates), so worker threads can share one histogram, or keep their own and
// merge() at the end — both give identical totals.
//
// Lock discipline (DESIGN.md §10): every field is an atomic, so this class
// deliberately carries no capability annotations — there is no mutex whose
// discipline the thread-safety analysis could check. The cross-thread
// contract (relaxed ops, quiescence requirement on merge()) is enforced by
// the TSan job instead.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace sc::common {

class LatencyHistogram {
public:
  /// Sub-bucket bits per octave: resolution = 2^-kSubBits (~3.1%).
  static constexpr std::uint32_t kSubBits = 5;
  static constexpr std::uint32_t kSub = 1u << kSubBits;
  /// Exact linear region: values in [0, 2 * kSub) get unit-width buckets.
  static constexpr std::uint32_t kLinear = 2 * kSub;
  /// One geometric run per octave above the linear region (64-bit values).
  static constexpr std::uint32_t kBuckets = kLinear + (63 - kSubBits) * kSub;

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Records one latency sample in nanoseconds. Thread-safe, lock-free.
  void record(std::uint64_t nanos);
  /// Convenience: records a sample given in seconds (clamped at 0).
  void record_seconds(double seconds);

  /// Adds every sample of `other` into this histogram (relaxed reads; exact
  /// when `other` is quiescent).
  void merge(const LatencyHistogram& other);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  /// Mean of the recorded samples in nanoseconds (0 when empty).
  double mean_nanos() const;
  /// Smallest / largest recorded sample (exact values, not bucket edges;
  /// 0 when empty).
  std::uint64_t min_nanos() const;
  std::uint64_t max_nanos() const;

  /// Upper bound of the bucket holding the sample of rank ceil(q * count):
  /// at least q of the samples are <= the returned value, and the true
  /// rank-q sample is within one bucket width below it. q is clamped to
  /// [0, 1]; returns 0 when empty.
  std::uint64_t percentile_nanos(double q) const;

  void reset();

  /// Worst-case relative over-estimate of percentile_nanos (bucket width /
  /// bucket lower edge) — 2^-kSubBits.
  static constexpr double relative_resolution() {
    return 1.0 / static_cast<double>(kSub);
  }

  /// Bucket index for a value (exposed for tests).
  static std::uint32_t bucket_index(std::uint64_t nanos);
  /// Inclusive upper edge of a bucket (exposed for tests).
  static std::uint64_t bucket_upper(std::uint32_t index);

private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~0ULL};
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace sc::common
