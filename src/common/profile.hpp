// Lightweight accumulating phase timers for the training loop.
//
// `sc_train --profile` needs a per-phase wall-time breakdown (encode / sample
// / contract / partition / simulate / backward) without dragging in a real
// profiler. Each phase accumulates total nanoseconds and call counts into
// global relaxed atomics; a disabled ScopedTimer costs one relaxed load and
// reads no clock, so the timers can stay compiled into the hot path.
//
// Lock discipline (DESIGN.md §10): atomics only, no mutex, no capability
// annotations — monotone counters tolerate any interleaving.
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace sc::prof {

/// The instrumented phases of one training epoch. Contract / Partition /
/// Simulate together are the reward (mask-evaluation) hot path.
enum class Phase : std::size_t {
  Encode = 0,  ///< GNN encoder + scorer forwards
  Sample,      ///< mask sampling from logits
  Contract,    ///< edge-collapse contraction
  Partition,   ///< coarse placement (multilevel partitioner + expand)
  Simulate,    ///< fluid simulator throughput evaluation
  Backward,    ///< loss backward + optimizer step
  kCount,
};

inline constexpr std::size_t kNumPhases = static_cast<std::size_t>(Phase::kCount);

/// Stable lowercase name for reports ("encode", "sample", ...).
std::string_view phase_name(Phase p);

/// Enables the timers (returns the previous setting). Default: disabled.
bool set_enabled(bool enabled);
bool enabled();

/// Accumulated totals since the last reset(). Safe to call concurrently with
/// running timers (relaxed reads; totals are monotone).
struct Snapshot {
  struct Entry {
    std::uint64_t nanos = 0;
    std::uint64_t calls = 0;
  };
  std::array<Entry, kNumPhases> phase;
};

Snapshot snapshot();
void reset();

/// Adds one timed interval to a phase (used by ScopedTimer; exposed for
/// tests).
void record(Phase p, std::uint64_t nanos);

/// RAII phase timer. Whether the timers are live is decided at construction,
/// so an enable/disable race mid-scope cannot unbalance start/stop.
class ScopedTimer {
 public:
  explicit ScopedTimer(Phase p) : phase_(p), active_(enabled()) {
    if (active_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (active_) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
      record(phase_, static_cast<std::uint64_t>(ns));
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Phase phase_;
  bool active_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace sc::prof
