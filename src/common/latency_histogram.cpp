#include "common/latency_histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace sc::common {

std::uint32_t LatencyHistogram::bucket_index(std::uint64_t nanos) {
  if (nanos < kLinear) return static_cast<std::uint32_t>(nanos);
  // 2^e <= nanos < 2^(e+1), with e >= kSubBits + 1.
  const std::uint32_t e = 63u - static_cast<std::uint32_t>(std::countl_zero(nanos));
  const auto sub = static_cast<std::uint32_t>((nanos >> (e - kSubBits)) - kSub);
  const std::uint32_t index = kLinear + (e - (kSubBits + 1)) * kSub + sub;
  return std::min(index, kBuckets - 1);
}

std::uint64_t LatencyHistogram::bucket_upper(std::uint32_t index) {
  if (index < kLinear) return index;
  const std::uint32_t run = (index - kLinear) / kSub;
  const std::uint32_t sub = (index - kLinear) % kSub;
  const std::uint32_t e = run + kSubBits + 1;
  return ((static_cast<std::uint64_t>(kSub) + sub + 1) << (e - kSubBits)) - 1;
}

void LatencyHistogram::record(std::uint64_t nanos) {
  buckets_[bucket_index(nanos)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(nanos, std::memory_order_relaxed);
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (nanos < cur && !min_.compare_exchange_weak(cur, nanos, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (nanos > cur && !max_.compare_exchange_weak(cur, nanos, std::memory_order_relaxed)) {
  }
}

void LatencyHistogram::record_seconds(double seconds) {
  const double ns = std::max(0.0, seconds) * 1e9;
  record(static_cast<std::uint64_t>(ns));
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::uint32_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n > 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  const std::uint64_t omin = other.min_.load(std::memory_order_relaxed);
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (omin < cur && !min_.compare_exchange_weak(cur, omin, std::memory_order_relaxed)) {
  }
  const std::uint64_t omax = other.max_.load(std::memory_order_relaxed);
  cur = max_.load(std::memory_order_relaxed);
  while (omax > cur && !max_.compare_exchange_weak(cur, omax, std::memory_order_relaxed)) {
  }
}

double LatencyHistogram::mean_nanos() const {
  const std::uint64_t n = count_.load(std::memory_order_relaxed);
  if (n == 0) return 0.0;
  return static_cast<double>(sum_.load(std::memory_order_relaxed)) / static_cast<double>(n);
}

std::uint64_t LatencyHistogram::min_nanos() const {
  const std::uint64_t v = min_.load(std::memory_order_relaxed);
  return v == ~0ULL ? 0 : v;
}

std::uint64_t LatencyHistogram::max_nanos() const {
  return max_.load(std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::percentile_nanos(double q) const {
  const std::uint64_t n = count_.load(std::memory_order_relaxed);
  if (n == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(n))));
  std::uint64_t seen = 0;
  for (std::uint32_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) {
      // Never report beyond the recorded maximum (the top bucket's edge can
      // overshoot it by up to the bucket width).
      return std::min(bucket_upper(i), max_nanos());
    }
  }
  return max_nanos();
}

void LatencyHistogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~0ULL, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

}  // namespace sc::common
