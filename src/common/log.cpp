#include "common/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>

#include "common/thread_annotations.hpp"

namespace sc::logging {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::Info)};
/// Serializes the single fwrite per message so concurrent log lines never
/// interleave mid-line (stderr is unbuffered, but fwrite is not atomic for
/// arbitrary sizes on all libcs).
Mutex g_write_mutex;

}  // namespace

LogLevel level() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void set_level(LogLevel l) { g_level.store(static_cast<int>(l), std::memory_order_relaxed); }

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

Message::Message(LogLevel lvl, const char* file, int line)
    : enabled_(lvl >= level() && lvl != LogLevel::Off), level_(lvl) {
  if (!enabled_) return;
  // Only keep the basename to reduce noise.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/' || *p == '\\') base = p + 1;
  }
  os_ << '[' << level_name(level_) << "] " << base << ':' << line << ": ";
}

Message::~Message() {
  if (!enabled_) return;
  os_ << '\n';
  const std::string s = os_.str();
  MutexLock lock(g_write_mutex);
  std::fwrite(s.data(), 1, s.size(), stderr);
}

}  // namespace sc::logging
