#include "common/flags.hpp"

#include <cstdlib>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/thread_pool.hpp"

namespace sc {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // `--name value` unless the next token is another flag (then boolean).
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool Flags::has(const std::string& name) const { return values_.count(name) > 0; }

std::string Flags::get_string(const std::string& name, const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

long Flags::get_int(const std::string& name, long fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long v = std::strtol(it->second.c_str(), &end, 10);
  SC_CHECK(end && *end == '\0', "flag --" << name << " expects an integer, got '" << it->second << "'");
  return v;
}

double Flags::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  SC_CHECK(end && *end == '\0', "flag --" << name << " expects a number, got '" << it->second << "'");
  return v;
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  SC_CHECK(false, "flag --" << name << " expects a boolean, got '" << v << "'");
  return fallback;
}

std::size_t configure_threads_from_flags(const Flags& flags) {
  const long n = flags.get_int("threads", 0);
  SC_CHECK(n >= 0, "--threads must be >= 0, got " << n);
  const auto threads = static_cast<std::size_t>(n);
  if (threads > 0 && !ThreadPool::configure_global(threads) &&
      ThreadPool::global().size() != threads) {
    SC_LOG(Warn) << "--threads " << threads << " ignored: global pool already running "
                 << ThreadPool::global().size() << " workers";
  }
  return threads;
}

}  // namespace sc
