#include "common/flags.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/thread_pool.hpp"

namespace sc {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // `--name value` unless the next token is another flag (then boolean).
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool Flags::has(const std::string& name) const { return values_.count(name) > 0; }

std::string Flags::get_string(const std::string& name, const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

long Flags::get_int(const std::string& name, long fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long v = std::strtol(it->second.c_str(), &end, 10);
  SC_CHECK(end && *end == '\0', "flag --" << name << " expects an integer, got '" << it->second << "'");
  return v;
}

double Flags::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  SC_CHECK(end && *end == '\0', "flag --" << name << " expects a number, got '" << it->second << "'");
  return v;
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  SC_CHECK(false, "flag --" << name << " expects a boolean, got '" << v << "'");
  return fallback;
}

namespace {

/// Plain Levenshtein distance, for "did you mean" suggestions.
std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t subst = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      diag = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, subst});
    }
  }
  return row[b.size()];
}

}  // namespace

void Flags::check_unknown(const std::vector<std::string>& known) const {
  for (const auto& [name, value] : values_) {
    if (std::find(known.begin(), known.end(), name) != known.end()) continue;

    std::string suggestion;
    std::size_t best = 3;  // only suggest within edit distance 2
    for (const std::string& k : known) {
      const std::size_t d = edit_distance(name, k);
      if (d < best) {
        best = d;
        suggestion = k;
      }
    }
    std::ostringstream os;
    os << "unknown flag --" << name;
    if (!suggestion.empty()) os << " (did you mean --" << suggestion << "?)";
    SC_CHECK(false, os.str());
  }
}

std::size_t configure_threads_from_flags(const Flags& flags) {
  // An explicit --threads 0 (or a negative count) is a configuration error,
  // not a request for the hardware default: fail loud instead of silently
  // running with a pool size the user did not ask for. Only an *absent* flag
  // means "use hardware concurrency".
  long n = flags.get_int("threads", 0);
  SC_CHECK(!flags.has("threads") || n >= 1,
           "--threads must be >= 1 (omit the flag for hardware concurrency), got " << n);
  const std::size_t hw = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t cap = hw * 8;  // oversubscription guard
  if (n > static_cast<long>(cap)) {
    SC_LOG(Warn) << "--threads " << n << " clamped to " << cap << " (8x the " << hw
                 << " hardware threads)";
    n = static_cast<long>(cap);
  }
  const auto threads = static_cast<std::size_t>(n);
  if (threads > 0 && !ThreadPool::configure_global(threads) &&
      ThreadPool::global().size() != threads) {
    SC_LOG(Warn) << "--threads " << threads << " ignored: global pool already running "
                 << ThreadPool::global().size() << " workers";
  }
  return threads;
}

}  // namespace sc
