// BoundedQueue: fixed-capacity MPMC queue for the serving admission path.
//
// The ring buffer is allocated once at construction; try_push / pop_batch
// only move elements in and out of pre-existing slots, so steady-state
// admission is allocation-free (enforced by the serve-hot-path lint rule).
// try_push never blocks: a full queue returns false and the caller sheds the
// request fail-loudly instead of growing an unbounded backlog.
//
// pop_batch implements the cross-request batching window: it blocks until at
// least one item is available (or the queue is closed and empty), then keeps
// collecting immediately-available items — waiting up to `window` past the
// first pop for stragglers — until `max_items` are gathered. Closing the
// queue wakes every waiter; items still queued at close time are drained by
// subsequent pop_batch calls (graceful drain), and only then does pop_batch
// return 0.
//
// Lock discipline (compiler-checked under Clang, DESIGN.md §10): every slot
// and cursor is guarded by `mutex_`; the ring vector itself is guarded too
// (its *size* is immutable, but its slots are written under the lock), so
// capacity() reports the separately stored `capacity_`.
#pragma once

#include <chrono>
#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "common/thread_annotations.hpp"

namespace sc::common {

template <typename T>
class BoundedQueue {
public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity), ring_(capacity) {
    SC_CHECK(capacity > 0, "bounded queue capacity must be positive");
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Non-blocking push. Returns false (and leaves `item` unspecified-moved
  /// only on success) when the queue is full or closed.
  // sc-lint: serve-hot-path
  bool try_push(T&& item) SC_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      if (closed_ || count_ == capacity_) return false;
      ring_[(head_ + count_) % capacity_] = std::move(item);
      ++count_;
    }
    cv_.notify_one();
    return true;
  }

  /// Pops between 1 and `max_items` items into `out` (appended; `out` is NOT
  /// cleared — callers reuse a retained buffer). Blocks until the first item
  /// arrives, then collects more until `max_items` are gathered or `window`
  /// has elapsed since the first pop. Returns the number popped; 0 means the
  /// queue is closed and fully drained.
  // sc-lint: serve-hot-path
  std::size_t pop_batch(std::vector<T>& out, std::size_t max_items,
                        std::chrono::microseconds window) SC_EXCLUDES(mutex_) {
    if (max_items == 0) return 0;
    std::size_t popped = 0;
    {
      MutexLock lock(mutex_);
      cv_.wait(mutex_, [&]() SC_REQUIRES(mutex_) { return count_ > 0 || closed_; });
      if (count_ == 0) return 0;  // closed and drained

      const auto deadline = std::chrono::steady_clock::now() + window;
      for (;;) {
        while (count_ > 0 && popped < max_items) {
          out.push_back(std::move(ring_[head_]));
          head_ = (head_ + 1) % capacity_;
          --count_;
          ++popped;
        }
        if (popped >= max_items || closed_ || window.count() <= 0) break;
        if (cv_.wait_until(mutex_, deadline,
                           [&]() SC_REQUIRES(mutex_) { return count_ > 0 || closed_; })) {
          if (count_ == 0) break;  // woken by close
          continue;                // more items arrived inside the window
        }
        break;  // window expired
      }
    }
    cv_.notify_all();  // wake other consumers (and close() waiters)
    return popped;
  }

  /// Closes the queue: subsequent try_push calls fail, waiters wake, queued
  /// items remain poppable until drained.
  void close() SC_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const SC_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return closed_;
  }

  std::size_t size() const SC_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return count_;
  }

  std::size_t capacity() const { return capacity_; }

private:
  const std::size_t capacity_;  ///< immutable; readable without the lock
  mutable Mutex mutex_;
  CondVar cv_;
  std::vector<T> ring_ SC_GUARDED_BY(mutex_);
  std::size_t head_ SC_GUARDED_BY(mutex_) = 0;
  std::size_t count_ SC_GUARDED_BY(mutex_) = 0;
  bool closed_ SC_GUARDED_BY(mutex_) = false;
};

}  // namespace sc::common
