// Compiler-checked lock discipline: Clang thread-safety-analysis annotations
// plus the annotated synchronization types the whole codebase locks through.
//
// The macros wrap Clang's capability attributes (SC_GUARDED_BY, SC_REQUIRES,
// SC_ACQUIRE/SC_RELEASE, ...) and expand to nothing on every other compiler,
// so GCC builds see plain forwarding wrappers with zero overhead (proven by
// tests/common/test_thread_annotations.cpp). Under Clang the repo builds with
// `-Wthread-safety -Werror=thread-safety` (CI job `clang-thread-safety`), so
// every GUARDED_BY field access outside its mutex and every REQUIRES call
// without the lock is a *compile error* — the static counterpart of the TSan
// job, which can only catch the interleavings a run happens to produce.
//
// libstdc++'s std::mutex/std::lock_guard carry no capability attributes, so
// the analysis cannot see through them. The annotated wrappers below are the
// project's lockable types; mutex-holding components hold sc::Mutex /
// sc::SharedMutex and lock via sc::MutexLock / sc::SharedReaderLock /
// sc::SharedWriterLock. Condition waits go through sc::CondVar, which (being
// built on condition_variable_any) waits directly on the annotated Mutex —
// no escape hatch back to an unannotated native handle.
//
// Annotation conventions (DESIGN.md §10):
//  - every field written under a mutex is SC_GUARDED_BY(that mutex);
//  - private helpers called with a lock held are SC_REQUIRES(mutex) instead
//    of re-locking;
//  - public entry points that take the lock themselves are SC_EXCLUDES(mutex)
//    so a caller already holding it is a compile error (self-deadlock);
//  - data that is immutable after construction, thread-local, or atomic is
//    deliberately *not* guarded — the annotation documents the synchronization
//    mechanism, and "no mutex needed" is part of that documentation.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>
#include <utility>

// ---- Attribute macros ------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SC_THREAD_ANNOTATIONS_ENABLED 1
#endif
#endif
#ifndef SC_THREAD_ANNOTATIONS_ENABLED
#define SC_THREAD_ANNOTATIONS_ENABLED 0
#endif

#if SC_THREAD_ANNOTATIONS_ENABLED
#define SC_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SC_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// Marks a type as a lockable capability ("mutex", "shared_mutex", ...).
#define SC_CAPABILITY(name) SC_THREAD_ANNOTATION(capability(name))
/// Marks an RAII type whose constructor acquires and destructor releases.
#define SC_SCOPED_CAPABILITY SC_THREAD_ANNOTATION(scoped_lockable)
/// Field may only be read/written while holding `mu` (exclusively for writes).
#define SC_GUARDED_BY(mu) SC_THREAD_ANNOTATION(guarded_by(mu))
/// Pointee (not the pointer) is guarded by `mu`.
#define SC_PT_GUARDED_BY(mu) SC_THREAD_ANNOTATION(pt_guarded_by(mu))
/// Function acquires the capability (exclusively / shared) and does not
/// release it before returning.
#define SC_ACQUIRE(...) SC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SC_ACQUIRE_SHARED(...) SC_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
/// Function releases the capability.
#define SC_RELEASE(...) SC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define SC_RELEASE_SHARED(...) SC_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
/// Function may acquire; returns `ret` iff it did.
#define SC_TRY_ACQUIRE(ret, ...) SC_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))
/// Caller must already hold the capability (exclusively / at least shared).
#define SC_REQUIRES(...) SC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SC_REQUIRES_SHARED(...) SC_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
/// Caller must NOT hold the capability (the function locks it itself).
#define SC_EXCLUDES(...) SC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Function returns a reference to the named capability.
#define SC_RETURN_CAPABILITY(mu) SC_THREAD_ANNOTATION(lock_returned(mu))
/// Escape hatch: disables the analysis for one function. Every use must carry
/// a comment explaining why the discipline cannot be expressed.
#define SC_NO_THREAD_SAFETY_ANALYSIS SC_THREAD_ANNOTATION(no_thread_safety_analysis)

// ---- Annotated synchronization types ---------------------------------------

namespace sc {

/// Exclusive mutex, annotated as a capability. Same cost as std::mutex (all
/// members are inline forwards).
class SC_CAPABILITY("mutex") Mutex {
public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SC_ACQUIRE() { mu_.lock(); }
  void unlock() SC_RELEASE() { mu_.unlock(); }
  bool try_lock() SC_TRY_ACQUIRE(true) { return mu_.try_lock(); }

private:
  std::mutex mu_;
};

/// Reader/writer mutex, annotated as a capability.
class SC_CAPABILITY("shared_mutex") SharedMutex {
public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() SC_ACQUIRE() { mu_.lock(); }
  void unlock() SC_RELEASE() { mu_.unlock(); }
  void lock_shared() SC_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() SC_RELEASE_SHARED() { mu_.unlock_shared(); }

private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock on a Mutex (the project's lock_guard). Also satisfies
/// BasicLockable-holder duties for CondVar::wait, which re-locks through the
/// Mutex itself.
class SC_SCOPED_CAPABILITY MutexLock {
public:
  explicit MutexLock(Mutex& mu) SC_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() SC_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

private:
  Mutex& mu_;
};

/// RAII shared (reader) lock on a SharedMutex.
class SC_SCOPED_CAPABILITY SharedReaderLock {
public:
  explicit SharedReaderLock(SharedMutex& mu) SC_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~SharedReaderLock() SC_RELEASE() { mu_.unlock_shared(); }
  SharedReaderLock(const SharedReaderLock&) = delete;
  SharedReaderLock& operator=(const SharedReaderLock&) = delete;

private:
  SharedMutex& mu_;
};

/// RAII exclusive (writer) lock on a SharedMutex.
class SC_SCOPED_CAPABILITY SharedWriterLock {
public:
  explicit SharedWriterLock(SharedMutex& mu) SC_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~SharedWriterLock() SC_RELEASE() { mu_.unlock(); }
  SharedWriterLock(const SharedWriterLock&) = delete;
  SharedWriterLock& operator=(const SharedWriterLock&) = delete;

private:
  SharedMutex& mu_;
};

/// Condition variable that waits directly on the annotated Mutex.
///
/// Built on condition_variable_any so the wait target is the capability type
/// itself — the analysis sees every wait annotated SC_REQUIRES(mu), and there
/// is no unannotated native-handle detour. The _any variant costs one extra
/// internal mutex per wait versus std::condition_variable; every wait in this
/// codebase guards work that is orders of magnitude heavier (task execution,
/// batch assembly, drain), where that overhead is noise.
class CondVar {
public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, waits, re-acquires. As with any condition
  /// wait, the predicate must be re-checked by the caller (prefer the
  /// predicate overloads).
  void wait(Mutex& mu) SC_REQUIRES(mu) { cv_.wait(mu); }

  template <typename Predicate>
  void wait(Mutex& mu, Predicate pred) SC_REQUIRES(mu) {
    cv_.wait(mu, std::move(pred));
  }

  /// Waits until `pred` holds or `deadline` passes; returns pred().
  template <typename Clock, typename Duration, typename Predicate>
  bool wait_until(Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline,
                  Predicate pred) SC_REQUIRES(mu) {
    return cv_.wait_until(mu, deadline, std::move(pred));
  }

  template <typename Rep, typename Period, typename Predicate>
  bool wait_for(Mutex& mu, const std::chrono::duration<Rep, Period>& dur,
                Predicate pred) SC_REQUIRES(mu) {
    return cv_.wait_for(mu, dur, std::move(pred));
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

private:
  std::condition_variable_any cv_;
};

}  // namespace sc
