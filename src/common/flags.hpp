// Minimal command-line flag parser for benches and examples.
//
//   sc::Flags flags(argc, argv);
//   int epochs = flags.get_int("epochs", 2);
//   bool full = flags.get_bool("paper-scale", false);
//
// Accepts --name=value, --name value, and bare --name for booleans.
// Unknown positional arguments are kept in positional().
//
// Tools should declare their known flags and call check_unknown() before
// reading any value: a typo'd flag (--epoch for --epochs) then exits with a
// usage error instead of silently training with defaults.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace sc {

class Flags {
public:
  Flags() = default;
  Flags(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get_string(const std::string& name, const std::string& fallback) const;
  long get_int(const std::string& name, long fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Throws sc::Error if any parsed --flag is not in `known`, naming the
  /// offender and suggesting the closest known flag (edit distance ≤ 2).
  void check_unknown(const std::vector<std::string>& known) const;

  const std::vector<std::string>& positional() const { return positional_; }

private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

/// Sizes ThreadPool::global() from --threads (0/absent = hardware
/// concurrency). Call early in main(), before the pool's first use; a
/// request that arrives after the pool exists with a different size is
/// logged and ignored. Returns the requested count.
std::size_t configure_threads_from_flags(const Flags& flags);

}  // namespace sc
