// Tiny leveled logger. Thread-safe; writes to stderr.
//
//   SC_LOG(Info) << "epoch " << e << " reward " << r;
//
// The global level defaults to Info and can be changed at runtime
// (benches expose a --verbose flag).
#pragma once

#include <sstream>
#include <string>

namespace sc {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

namespace logging {

LogLevel level();
void set_level(LogLevel level);
const char* level_name(LogLevel level);

/// Accumulates a message and emits it on destruction.
class Message {
public:
  Message(LogLevel level, const char* file, int line);
  ~Message();

  Message(const Message&) = delete;
  Message& operator=(const Message&) = delete;

  template <typename T>
  Message& operator<<(const T& value) {
    if (enabled_) os_ << value;
    return *this;
  }

private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace logging
}  // namespace sc

#define SC_LOG(severity) \
  ::sc::logging::Message(::sc::LogLevel::severity, __FILE__, __LINE__)
