// Deterministic, splittable random number generation.
//
// Every stochastic component in the library takes an explicit Rng so that
// datasets, training runs and benchmarks are reproducible bit-for-bit.
// The generator is xoshiro256** seeded through SplitMix64, which has good
// statistical quality and is much faster than std::mt19937_64.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/error.hpp"

namespace sc {

/// xoshiro256** PRNG with convenience distributions.
///
/// Satisfies UniformRandomBitGenerator, so it can also be handed to
/// <random> distributions when needed.
class Rng {
public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  /// Raw xoshiro256** state, for checkpointing. Restoring via set_state()
  /// resumes the exact stream: the next operator() call returns the same
  /// value it would have in the original generator.
  using State = std::array<std::uint64_t, 4>;
  const State& state() const { return state_; }
  void set_state(const State& s) {
    SC_CHECK(s[0] != 0 || s[1] != 0 || s[2] != 0 || s[3] != 0,
             "xoshiro256** state must not be all-zero");
    state_ = s;
  }

  /// Re-initialise the state from a single 64-bit seed via SplitMix64.
  void reseed(std::uint64_t seed) {
    for (auto& s : state_) {
      seed += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derive an independent child generator (for per-thread / per-graph streams).
  Rng split() { return Rng((*this)() ^ 0xA3EC647659359ACDULL); }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    SC_CHECK(lo <= hi, "uniform(lo, hi) requires lo <= hi");
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    SC_CHECK(lo <= hi, "uniform_int(lo, hi) requires lo <= hi");
    const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
    if (range == 0) return static_cast<std::int64_t>((*this)());  // full 64-bit range
    // Debiased modulo via rejection.
    const std::uint64_t limit = max() - max() % range;
    std::uint64_t x = (*this)();
    while (x >= limit) x = (*this)();
    return lo + static_cast<std::int64_t>(x % range);
  }

  /// Uniform index in [0, n).
  std::size_t index(std::size_t n) {
    SC_CHECK(n > 0, "index(n) requires n > 0");
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Standard normal via Box–Muller.
  double normal() {
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Sample an index according to (unnormalised, non-negative) weights.
  std::size_t weighted_index(const std::vector<double>& weights) {
    SC_CHECK(!weights.empty(), "weighted_index requires non-empty weights");
    double total = 0.0;
    for (double w : weights) {
      SC_CHECK(w >= 0.0, "weights must be non-negative");
      total += w;
    }
    SC_CHECK(total > 0.0, "weights must not all be zero");
    double x = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      x -= weights[i];
      if (x <= 0.0) return i;
    }
    return weights.size() - 1;  // guard against fp rounding
  }

  /// Fisher–Yates in-place shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace sc
