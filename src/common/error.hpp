// Error-handling primitives shared across the library.
//
// The library throws `sc::Error` (an std::runtime_error) on contract
// violations detected at API boundaries, and uses SC_ASSERT for internal
// invariants that indicate programmer error.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace sc {

/// Exception type thrown by all streamcoarsen components.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_error(const char* file, int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": " << msg;
  throw Error(os.str());
}

}  // namespace detail

}  // namespace sc

/// Check a user-facing precondition; throws sc::Error with location info.
#define SC_CHECK(cond, msg)                                                 \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::ostringstream sc_check_os_;                                      \
      sc_check_os_ << "check failed: " #cond " — " << msg; /* NOLINT */     \
      ::sc::detail::throw_error(__FILE__, __LINE__, sc_check_os_.str());    \
    }                                                                       \
  } while (false)

/// Internal invariant; same behaviour as SC_CHECK but signals a library bug.
#define SC_ASSERT(cond, msg)                                                \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::ostringstream sc_check_os_;                                      \
      sc_check_os_ << "internal invariant violated: " #cond " — " << msg;   \
      ::sc::detail::throw_error(__FILE__, __LINE__, sc_check_os_.str());    \
    }                                                                       \
  } while (false)
