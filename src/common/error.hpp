// Error-handling primitives shared across the library.
//
// The library throws `sc::Error` (an std::runtime_error) on contract
// violations detected at API boundaries, and uses SC_ASSERT for internal
// invariants that indicate programmer error.
//
// SC_DCHECK adds a third, *tiered* family for the correctness-analysis layer
// (DESIGN.md §7): checks that are too expensive for every Release call site
// but cheap enough to run in Debug/CI builds, guarded by a runtime level so
// production binaries can flip them on (`--validate`) without a rebuild.
#pragma once

#include <atomic>
#include <sstream>
#include <stdexcept>
#include <string>

namespace sc {

/// Exception type thrown by all streamcoarsen components.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_error(const char* file, int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": " << msg;
  throw Error(os.str());
}

}  // namespace detail

namespace analysis {

/// Validation tiers, ordered by cost. A check tagged `Cheap` is O(1)-ish
/// (bounds, sizes, a handful of comparisons); `Deep` walks whole structures
/// (DAG checks, feature-mass sums, per-element finiteness scans).
enum class Level : int { Off = 0, Cheap = 1, Deep = 2 };

namespace detail {

/// Compile-time default: SC_VALIDATE=ON builds (Debug/CI) start at Deep,
/// everything else starts at Off. A single relaxed atomic keeps the
/// SC_DCHECK guard to one predictable load + compare — measured at noise
/// level in Release (EXPERIMENTS.md "Validation overhead").
inline std::atomic<int>& level_storage() {
#ifdef SC_VALIDATE_BUILD
  static std::atomic<int> level{static_cast<int>(Level::Deep)};
#else
  static std::atomic<int> level{static_cast<int>(Level::Off)};
#endif
  return level;
}

}  // namespace detail

/// Current validation level.
inline Level level() {
  return static_cast<Level>(detail::level_storage().load(std::memory_order_relaxed));
}

/// Runtime toggle: tools expose it as --validate, tests pin it explicitly.
inline void set_level(Level l) {
  detail::level_storage().store(static_cast<int>(l), std::memory_order_relaxed);
}

/// True when checks of tier `l` should run.
inline bool enabled(Level l) { return level() >= l; }

/// RAII override of the validation level (tests, scoped deep-checking).
class ScopedLevel {
public:
  explicit ScopedLevel(Level l) : prev_(level()) { set_level(l); }
  ~ScopedLevel() { set_level(prev_); }
  ScopedLevel(const ScopedLevel&) = delete;
  ScopedLevel& operator=(const ScopedLevel&) = delete;

private:
  Level prev_;
};

}  // namespace analysis

}  // namespace sc

/// Check a user-facing precondition; throws sc::Error with location info.
#define SC_CHECK(cond, msg)                                                 \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::ostringstream sc_check_os_;                                      \
      sc_check_os_ << "check failed: " #cond " — " << msg; /* NOLINT */     \
      ::sc::detail::throw_error(__FILE__, __LINE__, sc_check_os_.str());    \
    }                                                                       \
  } while (false)

/// Internal invariant; same behaviour as SC_CHECK but signals a library bug.
#define SC_ASSERT(cond, msg)                                                \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::ostringstream sc_check_os_;                                      \
      sc_check_os_ << "internal invariant violated: " #cond " — " << msg;   \
      ::sc::detail::throw_error(__FILE__, __LINE__, sc_check_os_.str());    \
    }                                                                       \
  } while (false)

/// Tiered validation check (the correctness-analysis layer, DESIGN.md §7).
///
///   SC_DCHECK(Cheap, p.size() == n, "placement covers every node");
///   SC_DCHECK(Deep,  mass_ok,       "coarse CPU mass conserved");
///
/// Skipped entirely (one relaxed load + predicted branch) unless the runtime
/// validation level is at least `tier`; SC_VALIDATE=ON builds default the
/// level to Deep, Release builds to Off (overridable via
/// sc::analysis::set_level or the tools' --validate flag).
#define SC_DCHECK(tier, cond, msg)                                          \
  do {                                                                      \
    if (::sc::analysis::enabled(::sc::analysis::Level::tier) && !(cond)) {  \
      std::ostringstream sc_check_os_;                                      \
      sc_check_os_ << "validation failed [" #tier "]: " #cond " — " << msg; \
      ::sc::detail::throw_error(__FILE__, __LINE__, sc_check_os_.str());    \
    }                                                                       \
  } while (false)

/// Guard for whole validator call sites: runs `stmt` only at tier `tier`.
/// Use for block-level hooks (e.g. analysis::validate(coarsening, ...)) whose
/// cost should vanish when validation is off.
#define SC_VALIDATE_AT(tier, stmt)                                          \
  do {                                                                      \
    if (::sc::analysis::enabled(::sc::analysis::Level::tier)) {             \
      stmt;                                                                 \
    }                                                                       \
  } while (false)
