#include "rl/rollout.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "common/profile.hpp"
#include "graph/union_find.hpp"
#include "nn/tensor.hpp"
#include "partition/workspace.hpp"
#include "rl/episode_cache.hpp"

namespace sc::rl {

sim::ClusterSpec to_cluster_spec(const gen::WorkloadConfig& wl) {
  sim::ClusterSpec spec;
  spec.num_devices = wl.num_devices;
  spec.device_mips = wl.device_mips;
  spec.bandwidth = wl.bandwidth;
  spec.source_rate = wl.source_rate;
  return spec;
}

namespace {

/// Per-thread storage for the reward hot path: the mask bit buffer and the
/// Coarsening that contract_into() overwrites in place (DESIGN.md §5.4).
struct RewardWorkspace {
  std::vector<bool> bits;
  graph::Coarsening coarsening;

  static RewardWorkspace& local() {
    thread_local RewardWorkspace ws;
    return ws;
  }
};

sim::Placement place_timed(const CoarsePlacer& placer, const graph::Coarsening& c,
                           const sim::FluidSimulator& simulator) {
  prof::ScopedTimer timer(prof::Phase::Partition);
  return placer(c, simulator);
}

/// coarsen_only_placer without the full edge sort: selects the heaviest
/// edges in doubling batches with nth_element over the workspace's order
/// buffer. The batch prefix is sorted with a (weight desc, id asc) total
/// order — exactly the legacy stable_sort's order — so the union sequence,
/// and therefore the placement, is bit-identical.
// sc-lint: hot-path
sim::Placement coarsen_only_place_ws(const graph::Coarsening& c,
                                     const sim::FluidSimulator& simulator) {
  const std::size_t devices = simulator.spec().num_devices;
  const std::size_t n = c.coarse.num_nodes();
  partition::PartitionWorkspace& ws = partition::PartitionWorkspace::local();

  ws.coarse_device.resize(n);
  if (n <= devices) {
    std::iota(ws.coarse_device.begin(), ws.coarse_device.end(), 0);
    // The expanded fine placement is this function's result object; the one
    // allocation per rollout is the output, not hidden churn.
    return c.expand_placement(ws.coarse_device);  // sc-lint: allow(transitive-alloc)
  }

  const std::size_t m = c.coarse.num_edges();
  ws.edge_order.resize(m);
  std::iota(ws.edge_order.begin(), ws.edge_order.end(), graph::EdgeId{0});
  const auto heavier = [&](graph::EdgeId a, graph::EdgeId b) {
    if (c.coarse.edge(a).weight != c.coarse.edge(b).weight) {
      return c.coarse.edge(a).weight > c.coarse.edge(b).weight;
    }
    return a < b;
  };

  ws.dsu.reset(n);
  // Merging stops after at most n - devices unions, so usually only a small
  // prefix of the sorted edge order is ever consumed. Select it lazily:
  // partial-select a batch, sort just that batch, and only touch the next
  // (doubled) batch if the merge budget is not yet exhausted.
  std::size_t begin = 0;
  std::size_t batch = std::min(m, std::max<std::size_t>(64, 2 * (n - devices)));
  bool done = false;
  while (!done && begin < m) {
    const std::size_t end = std::min(m, begin + batch);
    if (end < m) {
      std::nth_element(ws.edge_order.begin() + static_cast<std::ptrdiff_t>(begin),
                       ws.edge_order.begin() + static_cast<std::ptrdiff_t>(end),
                       ws.edge_order.end(), heavier);
    }
    std::sort(ws.edge_order.begin() + static_cast<std::ptrdiff_t>(begin),
              ws.edge_order.begin() + static_cast<std::ptrdiff_t>(end), heavier);
    for (std::size_t i = begin; i < end; ++i) {
      if (ws.dsu.num_components() <= devices) {
        done = true;
        break;
      }
      const graph::WeightedEdge& e = c.coarse.edge(ws.edge_order[i]);
      ws.dsu.unite(e.a, e.b);
    }
    begin = end;
    batch *= 2;
  }

  // Disconnected leftovers: merge smallest components arbitrarily.
  // Assign devices round-robin over roots (over-assignments wrap).
  ws.root_device.assign(n, -1);
  int next = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t root = ws.dsu.find(v);
    if (ws.root_device[root] < 0) {
      ws.root_device[root] = next % static_cast<int>(devices);
      ++next;
    }
    ws.coarse_device[v] = ws.root_device[root];
  }
  // As above: the expanded placement is the rollout's result object.
  return c.expand_placement(ws.coarse_device);  // sc-lint: allow(transitive-alloc)
}

}  // namespace

const graph::Coarsening& contract_mask(const GraphContext& ctx, const gnn::EdgeMask& mask,
                                       graph::Coarsening& legacy_storage) {
  prof::ScopedTimer timer(prof::Phase::Contract);
  if (graph::contraction_scratch::enabled()) {
    SC_CHECK(mask.size() == ctx.graph->num_edges(), "mask size does not match edge count");
    RewardWorkspace& ws = RewardWorkspace::local();
    ws.bits.resize(mask.size());
    for (std::size_t e = 0; e < mask.size(); ++e) ws.bits[e] = mask[e] != 0;
    graph::contract_into(*ctx.graph, ctx.profile, ws.bits,
                         graph::contraction_scratch::local(), ws.coarsening);
    return ws.coarsening;
  }
  legacy_storage = gnn::CoarseningPolicy::apply(*ctx.graph, ctx.profile, mask);
  return legacy_storage;
}

CoarsePlacer metis_placer(const partition::PartitionOptions& opts) {
  return [opts](const graph::Coarsening& c, const sim::FluidSimulator& simulator) {
    const auto coarse_p =
        partition::metis_allocate_coarse(c.coarse, simulator.spec(), opts);
    return c.expand_placement(coarse_p);
  };
}

CoarsePlacer metis_oracle_placer(const partition::PartitionOptions& opts) {
  return [opts](const graph::Coarsening& c, const sim::FluidSimulator& simulator) {
    return partition::metis_oracle_allocate_coarse(c, simulator, opts);
  };
}

CoarsePlacer coarsen_only_placer() {
  return [](const graph::Coarsening& c, const sim::FluidSimulator& simulator) {
    if (partition::workspace::enabled()) return coarsen_only_place_ws(c, simulator);

    const std::size_t devices = simulator.spec().num_devices;
    const std::size_t n = c.coarse.num_nodes();

    // Merge the heaviest remaining coarse edges until the graph fits on the
    // devices (the "merge until |V'| = |D|" rule from Table II).
    std::vector<int> coarse_device(n);
    if (n <= devices) {
      std::iota(coarse_device.begin(), coarse_device.end(), 0);
    } else {
      std::vector<graph::EdgeId> order(c.coarse.num_edges());
      std::iota(order.begin(), order.end(), graph::EdgeId{0});
      std::stable_sort(order.begin(), order.end(), [&](graph::EdgeId a, graph::EdgeId b) {
        return c.coarse.edge(a).weight > c.coarse.edge(b).weight;
      });
      graph::UnionFind dsu(n);
      for (const graph::EdgeId e : order) {
        if (dsu.num_components() <= devices) break;
        dsu.unite(c.coarse.edge(e).a, c.coarse.edge(e).b);
      }
      // Disconnected leftovers: merge smallest components arbitrarily.
      // Assign devices round-robin over roots (over-assignments wrap).
      std::vector<int> root_device(n, -1);
      int next = 0;
      for (std::size_t v = 0; v < n; ++v) {
        const std::size_t root = dsu.find(v);
        if (root_device[root] < 0) {
          root_device[root] = next % static_cast<int>(devices);
          ++next;
        }
        coarse_device[v] = root_device[root];
      }
    }
    return c.expand_placement(coarse_device);
  };
}

GraphContext::GraphContext(const graph::StreamGraph& g, const sim::ClusterSpec& spec)
    : graph(&g),
      profile(graph::compute_load_profile(g)),
      features(gnn::extract_features(g, profile, spec)),
      simulator(g, spec, profile),
      cache(std::make_shared<EpisodeCache>()) {}

std::vector<GraphContext> make_contexts(const std::vector<graph::StreamGraph>& graphs,
                                        const sim::ClusterSpec& spec) {
  std::vector<GraphContext> ctxs;
  ctxs.reserve(graphs.size());
  for (const auto& g : graphs) ctxs.emplace_back(g, spec);
  return ctxs;
}

Episode evaluate_mask(const GraphContext& ctx, const gnn::EdgeMask& mask,
                      const CoarsePlacer& placer) {
  graph::Coarsening legacy_storage;
  const graph::Coarsening& c = contract_mask(ctx, mask, legacy_storage);
  const sim::Placement p = place_timed(placer, c, ctx.simulator);
  Episode ep;
  ep.mask = mask;
  {
    prof::ScopedTimer timer(prof::Phase::Simulate);
    ep.reward = ctx.simulator.relative_throughput(p);
  }
  ep.compression = c.compression_ratio();
  return ep;
}

Episode evaluate_mask_cached(const GraphContext& ctx, const gnn::EdgeMask& mask,
                             const CoarsePlacer& placer) {
  const std::uint64_t key = hash_mask(mask);
  if (auto hit = ctx.cache->lookup(key, mask)) return *std::move(hit);
  Episode ep = evaluate_mask(ctx, mask, placer);
  ctx.cache->insert(key, ep);
  return ep;
}

sim::Placement allocate_with_policy(const gnn::CoarseningPolicy& policy,
                                    const GraphContext& ctx, const CoarsePlacer& placer) {
  nn::NoGradGuard no_grad;
  const nn::Tensor logit_tensor = policy.logits(ctx.features);
  const gnn::EdgeMask mask = policy.greedy(logit_tensor.value());
  graph::Coarsening legacy_storage;
  const graph::Coarsening& c = contract_mask(ctx, mask, legacy_storage);
  return placer(c, ctx.simulator);
}

sim::Placement allocate_with_policy_best_of(const gnn::CoarseningPolicy& policy,
                                            const GraphContext& ctx,
                                            const CoarsePlacer& placer,
                                            std::size_t samples, Rng& rng) {
  nn::NoGradGuard no_grad;
  const nn::Tensor logit_tensor = policy.logits(ctx.features);

  std::vector<gnn::EdgeMask> masks;
  masks.push_back(policy.greedy(logit_tensor.value()));
  for (std::size_t s = 0; s < samples; ++s) {
    masks.push_back(policy.sample(logit_tensor.value(), rng));
  }

  // Score every candidate through the context's episode cache (reward is
  // relative throughput — absolute throughput divided by a per-context
  // constant — so the argmax and its strict-greater/first-wins tie-breaking
  // are unchanged), then contract and place only the winner. Repeated masks
  // (the greedy mask in particular, and any mask seen during training on
  // this context) cost a hash lookup instead of a simulation.
  std::size_t best_i = 0;
  double best_reward = -1.0;
  for (std::size_t i = 0; i < masks.size(); ++i) {
    const Episode ep = evaluate_mask_cached(ctx, masks[i], placer);
    if (ep.reward > best_reward) {
      best_reward = ep.reward;
      best_i = i;
    }
  }
  graph::Coarsening legacy_storage;
  const graph::Coarsening& c = contract_mask(ctx, masks[best_i], legacy_storage);
  return placer(c, ctx.simulator);
}

}  // namespace sc::rl
