#include "rl/rollout.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "graph/union_find.hpp"
#include "nn/tensor.hpp"
#include "rl/episode_cache.hpp"

namespace sc::rl {

sim::ClusterSpec to_cluster_spec(const gen::WorkloadConfig& wl) {
  sim::ClusterSpec spec;
  spec.num_devices = wl.num_devices;
  spec.device_mips = wl.device_mips;
  spec.bandwidth = wl.bandwidth;
  spec.source_rate = wl.source_rate;
  return spec;
}

CoarsePlacer metis_placer(const partition::PartitionOptions& opts) {
  return [opts](const graph::Coarsening& c, const sim::FluidSimulator& simulator) {
    const auto coarse_p =
        partition::metis_allocate_coarse(c.coarse, simulator.spec(), opts);
    return c.expand_placement(coarse_p);
  };
}

CoarsePlacer metis_oracle_placer(const partition::PartitionOptions& opts) {
  return [opts](const graph::Coarsening& c, const sim::FluidSimulator& simulator) {
    return partition::metis_oracle_allocate_coarse(c, simulator, opts);
  };
}

CoarsePlacer coarsen_only_placer() {
  return [](const graph::Coarsening& c, const sim::FluidSimulator& simulator) {
    const std::size_t devices = simulator.spec().num_devices;
    const std::size_t n = c.coarse.num_nodes();

    // Merge the heaviest remaining coarse edges until the graph fits on the
    // devices (the "merge until |V'| = |D|" rule from Table II).
    std::vector<int> coarse_device(n);
    if (n <= devices) {
      std::iota(coarse_device.begin(), coarse_device.end(), 0);
    } else {
      std::vector<graph::EdgeId> order(c.coarse.num_edges());
      std::iota(order.begin(), order.end(), graph::EdgeId{0});
      std::stable_sort(order.begin(), order.end(), [&](graph::EdgeId a, graph::EdgeId b) {
        return c.coarse.edge(a).weight > c.coarse.edge(b).weight;
      });
      graph::UnionFind dsu(n);
      for (const graph::EdgeId e : order) {
        if (dsu.num_components() <= devices) break;
        dsu.unite(c.coarse.edge(e).a, c.coarse.edge(e).b);
      }
      // Disconnected leftovers: merge smallest components arbitrarily.
      // Assign devices round-robin over roots (over-assignments wrap).
      std::vector<int> root_device(n, -1);
      int next = 0;
      for (std::size_t v = 0; v < n; ++v) {
        const std::size_t root = dsu.find(v);
        if (root_device[root] < 0) {
          root_device[root] = next % static_cast<int>(devices);
          ++next;
        }
        coarse_device[v] = root_device[root];
      }
    }
    return c.expand_placement(coarse_device);
  };
}

GraphContext::GraphContext(const graph::StreamGraph& g, const sim::ClusterSpec& spec)
    : graph(&g),
      profile(graph::compute_load_profile(g)),
      features(gnn::extract_features(g, profile, spec)),
      simulator(g, spec),
      cache(std::make_shared<EpisodeCache>()) {}

std::vector<GraphContext> make_contexts(const std::vector<graph::StreamGraph>& graphs,
                                        const sim::ClusterSpec& spec) {
  std::vector<GraphContext> ctxs;
  ctxs.reserve(graphs.size());
  for (const auto& g : graphs) ctxs.emplace_back(g, spec);
  return ctxs;
}

Episode evaluate_mask(const GraphContext& ctx, const gnn::EdgeMask& mask,
                      const CoarsePlacer& placer) {
  const graph::Coarsening c =
      gnn::CoarseningPolicy::apply(*ctx.graph, ctx.profile, mask);
  const sim::Placement p = placer(c, ctx.simulator);
  Episode ep;
  ep.mask = mask;
  ep.reward = ctx.simulator.relative_throughput(p);
  ep.compression = c.compression_ratio();
  return ep;
}

Episode evaluate_mask_cached(const GraphContext& ctx, const gnn::EdgeMask& mask,
                             const CoarsePlacer& placer) {
  const std::uint64_t key = hash_mask(mask);
  if (auto hit = ctx.cache->lookup(key, mask)) return *std::move(hit);
  Episode ep = evaluate_mask(ctx, mask, placer);
  ctx.cache->insert(key, ep);
  return ep;
}

sim::Placement allocate_with_policy(const gnn::CoarseningPolicy& policy,
                                    const GraphContext& ctx, const CoarsePlacer& placer) {
  nn::NoGradGuard no_grad;
  const nn::Tensor logit_tensor = policy.logits(ctx.features);
  const gnn::EdgeMask mask = policy.greedy(logit_tensor.value());
  const graph::Coarsening c =
      gnn::CoarseningPolicy::apply(*ctx.graph, ctx.profile, mask);
  return placer(c, ctx.simulator);
}

sim::Placement allocate_with_policy_best_of(const gnn::CoarseningPolicy& policy,
                                            const GraphContext& ctx,
                                            const CoarsePlacer& placer,
                                            std::size_t samples, Rng& rng) {
  nn::NoGradGuard no_grad;
  const nn::Tensor logit_tensor = policy.logits(ctx.features);

  std::vector<gnn::EdgeMask> masks;
  masks.push_back(policy.greedy(logit_tensor.value()));
  for (std::size_t s = 0; s < samples; ++s) {
    masks.push_back(policy.sample(logit_tensor.value(), rng));
  }

  // Score every candidate through the context's episode cache (reward is
  // relative throughput — absolute throughput divided by a per-context
  // constant — so the argmax and its strict-greater/first-wins tie-breaking
  // are unchanged), then contract and place only the winner. Repeated masks
  // (the greedy mask in particular, and any mask seen during training on
  // this context) cost a hash lookup instead of a simulation.
  std::size_t best_i = 0;
  double best_reward = -1.0;
  for (std::size_t i = 0; i < masks.size(); ++i) {
    const Episode ep = evaluate_mask_cached(ctx, masks[i], placer);
    if (ep.reward > best_reward) {
      best_reward = ep.reward;
      best_i = i;
    }
  }
  const graph::Coarsening c =
      gnn::CoarseningPolicy::apply(*ctx.graph, ctx.profile, masks[best_i]);
  return placer(c, ctx.simulator);
}

}  // namespace sc::rl
