// Episode rollout machinery: per-graph cached context and mask evaluation.
//
// A rollout turns an edge-collapse mask (the RL action) into a reward:
//   mask -> contract -> place the coarse graph -> expand -> simulate ->
//   relative throughput T(Gy)/I(Gx) in (0, 1].
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "gen/generator.hpp"
#include "gnn/features.hpp"
#include "gnn/policy.hpp"
#include "graph/contraction.hpp"
#include "partition/allocate.hpp"
#include "sim/fluid.hpp"

namespace sc::rl {

class EpisodeCache;  // episode_cache.hpp

/// Converts a generator workload into the matching simulation cluster.
sim::ClusterSpec to_cluster_spec(const gen::WorkloadConfig& wl);

/// Places a coarsened graph onto devices and expands to the original graph.
using CoarsePlacer =
    std::function<sim::Placement(const graph::Coarsening&, const sim::FluidSimulator&)>;

/// Built-in placers for the paper's framework variants.
CoarsePlacer metis_placer(const partition::PartitionOptions& opts = {});
CoarsePlacer metis_oracle_placer(const partition::PartitionOptions& opts = {});
/// Table II "Coarsen-only": no partitioning model. If the coarse graph still
/// has more nodes than devices, the heaviest coarse edges are merged until
/// it fits; coarse nodes then map one-to-one onto devices.
CoarsePlacer coarsen_only_placer();

/// Everything rollouts need for one graph, computed once.
/// Borrows the graph; it must outlive the context (keep the dataset alive).
struct GraphContext {
  GraphContext(const graph::StreamGraph& graph, const sim::ClusterSpec& spec);
  GraphContext(graph::StreamGraph&&, const sim::ClusterSpec&) = delete;

  const graph::StreamGraph* graph;
  graph::LoadProfile profile;
  gnn::GraphFeatures features;
  sim::FluidSimulator simulator;
  /// Memoizes evaluate_mask results per mask (see episode_cache.hpp); shared
  /// so contexts stay copyable and the cache survives context vectors being
  /// rebuilt from the same graphs.
  std::shared_ptr<EpisodeCache> cache;
};

/// Builds contexts for a whole dataset split.
std::vector<GraphContext> make_contexts(const std::vector<graph::StreamGraph>& graphs,
                                        const sim::ClusterSpec& spec);

/// One evaluated action.
struct Episode {
  gnn::EdgeMask mask;
  double reward = 0.0;        ///< relative throughput in (0, 1]
  double compression = 1.0;   ///< |V| / |V'|
};

/// Contracts `mask` for `ctx`, preferring the allocation-free scratch fast
/// path (DESIGN.md §5.4). The result lives either in a thread-local
/// workspace (fast path) or in `legacy_storage` (toggle off); the returned
/// reference stays valid until the next contraction on the calling thread.
/// Exposed so callers outside the rollout loop (the serving tier) reuse the
/// same retained-scratch path instead of re-allocating per request.
const graph::Coarsening& contract_mask(const GraphContext& ctx, const gnn::EdgeMask& mask,
                                       graph::Coarsening& legacy_storage);

/// Evaluates a mask end to end (contract, place, simulate).
Episode evaluate_mask(const GraphContext& ctx, const gnn::EdgeMask& mask,
                      const CoarsePlacer& placer);

/// Memoizing variant: consults ctx.cache first and records fresh
/// evaluations. Thread-safe; concurrent misses on the same mask evaluate
/// redundantly but insert identical results. Cached and uncached results are
/// bit-for-bit identical (the whole pipeline is deterministic in the mask).
Episode evaluate_mask_cached(const GraphContext& ctx, const gnn::EdgeMask& mask,
                             const CoarsePlacer& placer);

/// Full inference: greedy mask from the policy, then place. Returns the
/// fine-grained placement.
sim::Placement allocate_with_policy(const gnn::CoarseningPolicy& policy,
                                    const GraphContext& ctx, const CoarsePlacer& placer);

/// Best-of-k inference: evaluates the greedy mask plus `samples` stochastic
/// masks through the simulator and returns the highest-throughput placement.
/// Deployment-legal whenever the simulator is available offline (the paper's
/// setting); trades ~k× inference cost for extra quality.
///
/// Candidates are scored through ctx.cache (see evaluate_mask_cached) and
/// only the winning mask is contracted and placed again, which assumes the
/// placer is deterministic — true for all built-in placers. A repeated mask
/// (e.g. the greedy mask across calls) costs a hash lookup, not a simulation.
sim::Placement allocate_with_policy_best_of(const gnn::CoarseningPolicy& policy,
                                            const GraphContext& ctx,
                                            const CoarsePlacer& placer,
                                            std::size_t samples, Rng& rng);

}  // namespace sc::rl
