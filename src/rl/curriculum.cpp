#include "rl/curriculum.hpp"

#include "common/log.hpp"

namespace sc::rl {

CurriculumLevel make_level(std::string name, std::vector<graph::StreamGraph> graphs,
                           const gen::GeneratorConfig& cfg, std::size_t epochs) {
  CurriculumLevel level;
  level.name = std::move(name);
  level.graphs = std::move(graphs);
  level.spec = to_cluster_spec(cfg.workload);
  level.epochs = epochs;
  return level;
}

std::vector<LevelReport> run_curriculum(gnn::CoarseningPolicy& policy,
                                        std::vector<CurriculumLevel>& levels,
                                        const CoarsePlacer& placer,
                                        const TrainerConfig& cfg) {
  std::vector<LevelReport> reports;
  std::uint64_t seed = cfg.seed;
  for (CurriculumLevel& level : levels) {
    LevelReport report;
    report.name = level.name;

    auto contexts = make_contexts(level.graphs, level.spec);
    TrainerConfig level_cfg = cfg;
    level_cfg.seed = seed++;
    ReinforceTrainer trainer(policy, contexts, placer, level_cfg);
    for (std::size_t e = 0; e < level.epochs; ++e) {
      EpochStats stats = trainer.train_epoch();
      SC_LOG(Info) << "curriculum level '" << level.name << "' epoch " << e
                   << ": sample_r=" << stats.mean_sample_reward
                   << " best_r=" << stats.mean_best_reward
                   << " greedy_r=" << stats.mean_greedy_reward
                   << " compress=" << stats.mean_compression;
      report.epochs.push_back(stats);
    }
    reports.push_back(std::move(report));
  }
  return reports;
}

}  // namespace sc::rl
