#include "rl/reinforce.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/log.hpp"
#include "graph/contraction.hpp"
#include "nn/ops.hpp"
#include "rl/episode_cache.hpp"

namespace sc::rl {

namespace {

/// SplitMix64-style seed derivation for the per-sample RNG streams: the
/// resulting mask sequence depends only on (epoch seed, pair index), never on
/// which worker thread evaluates the pair.
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) {
  std::uint64_t z = base + (index + 1) * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

ReinforceTrainer::ReinforceTrainer(gnn::CoarseningPolicy& policy,
                                   std::vector<GraphContext>& contexts,
                                   CoarsePlacer placer, const TrainerConfig& cfg)
    : policy_(policy),
      contexts_(contexts),
      placer_(std::move(placer)),
      cfg_(cfg),
      buffer_(contexts.size(), cfg.buffer_capacity),
      optimizer_(policy.parameters(), cfg.adam),
      rng_(cfg.seed) {
  SC_CHECK(!contexts_.empty(), "trainer needs at least one graph context");
  SC_CHECK(cfg_.on_policy_samples > 0, "need at least one on-policy sample");
  if (cfg_.metis_guidance) seed_metis_guidance();
}

Episode ReinforceTrainer::run_episode(const GraphContext& ctx,
                                      const gnn::EdgeMask& mask) const {
  return cfg_.episode_cache ? evaluate_mask_cached(ctx, mask, placer_)
                            : evaluate_mask(ctx, mask, placer_);
}

ThreadPool& ReinforceTrainer::pool() const {
  return cfg_.pool != nullptr ? *cfg_.pool : ThreadPool::global();
}

void ReinforceTrainer::seed_metis_guidance() {
  // For every training graph: run the multilevel partitioner as Metis would,
  // treat its device groups as a coarsening, and recover an edge-collapse
  // mask via maximum-spanning-tree selection (Sec. IV-C). These episodes act
  // as informative cold-start samples and are naturally evicted once the
  // policy discovers better masks.
  std::vector<Episode> seeds(contexts_.size());
  pool().parallel_for(contexts_.size(), [&](std::size_t i) {
    const GraphContext& ctx = contexts_[i];
    const sim::Placement metis_p = partition::metis_allocate(
        *ctx.graph, ctx.simulator.spec(), cfg_.partition_opts);
    std::vector<graph::NodeId> groups(metis_p.begin(), metis_p.end());
    const auto mask_bits = graph::mask_from_groups(*ctx.graph, ctx.profile, groups);
    gnn::EdgeMask mask(mask_bits.size());
    for (std::size_t e = 0; e < mask.size(); ++e) mask[e] = mask_bits[e] ? 1 : 0;
    seeds[i] = run_episode(ctx, mask);
  });
  for (std::size_t i = 0; i < seeds.size(); ++i) buffer_.insert(i, std::move(seeds[i]));
}

EpochStats ReinforceTrainer::train_epoch() {
  EpochStats stats;
  const std::size_t num_graphs = contexts_.size();
  const std::size_t samples = cfg_.on_policy_samples;

  std::uint64_t hits_before = 0, misses_before = 0;
  for (const GraphContext& ctx : contexts_) {
    hits_before += ctx.cache->hits();
    misses_before += ctx.cache->misses();
  }

  std::vector<std::size_t> order(num_graphs);
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng_.shuffle(order);
  // One draw from the trainer RNG seeds every per-sample stream this epoch;
  // drawn on the main thread so results never depend on worker scheduling.
  const std::uint64_t epoch_seed = rng_();

  // 1. Sample on-policy masks for every graph from the epoch-start policy
  // (one no-grad logits pass per graph), then evaluate all graph × sample
  // pairs in a single parallel_for: the per-graph sample count alone is
  // often too small to fill the pool.
  std::vector<std::vector<gnn::EdgeMask>> masks(num_graphs);
  pool().parallel_for(num_graphs, [&](std::size_t gi) {
    nn::NoGradGuard no_grad;
    const nn::Tensor logit_tensor = policy_.logits(contexts_[gi].features);
    masks[gi].reserve(samples);
    for (std::size_t s = 0; s < samples; ++s) {
      Rng sample_rng(derive_seed(epoch_seed, gi * samples + s));
      masks[gi].push_back(policy_.sample(logit_tensor.value(), sample_rng));
    }
  });

  std::vector<Episode> episodes(num_graphs * samples);
  pool().parallel_for(episodes.size(), [&](std::size_t idx) {
    episodes[idx] = run_episode(contexts_[idx / samples], masks[idx / samples][idx % samples]);
  });

  // 2. Sequential per-graph policy updates in shuffled order (one optimizer
  // step per graph, as before; masks come from the epoch-start policy).
  for (const std::size_t gi : order) {
    const GraphContext& ctx = contexts_[gi];
    const auto first = episodes.begin() + static_cast<std::ptrdiff_t>(gi * samples);
    std::vector<Episode> batch(first, first + static_cast<std::ptrdiff_t>(samples));

    double on_policy_sum = 0.0;
    for (const Episode& ep : batch) on_policy_sum += ep.reward;
    stats.mean_sample_reward += on_policy_sum / static_cast<double>(batch.size());

    // Mix in the historically best samples.
    for (Episode& ep : buffer_.best(gi, cfg_.buffer_samples)) {
      batch.push_back(std::move(ep));
    }

    // Baseline and policy-gradient loss.
    double baseline = 0.0;
    for (const Episode& ep : batch) baseline += ep.reward;
    baseline /= static_cast<double>(batch.size());

    nn::Tensor logit_tensor = policy_.logits(ctx.features);  // grads recorded
    nn::Tensor loss = nn::Tensor::scalar(0.0);
    for (const Episode& ep : batch) {
      const double advantage = ep.reward - baseline;
      if (std::abs(advantage) < 1e-12) continue;
      loss = nn::add(loss, nn::scale(policy_.log_prob(logit_tensor, ep.mask), -advantage));
    }
    loss = nn::scale(loss, 1.0 / static_cast<double>(batch.size()));
    if (cfg_.entropy_bonus > 0.0) {
      loss = nn::sub(loss, nn::scale(nn::mean(nn::bernoulli_entropy(logit_tensor)),
                                     cfg_.entropy_bonus));
    }
    stats.mean_loss += loss.item();
    loss.backward();
    optimizer_.step();

    // Persist this step's on-policy samples for future baselines.
    for (std::size_t s = 0; s < samples; ++s) {
      buffer_.insert(gi, episodes[gi * samples + s]);
    }
    stats.mean_best_reward += buffer_.best_reward(gi);
  }

  const double n = static_cast<double>(num_graphs);
  stats.mean_sample_reward /= n;
  stats.mean_best_reward /= n;
  stats.mean_loss /= n;

  // 3. Greedy evaluation on the training graphs (cheap health signal). One
  // logits pass per context yields both the greedy reward and the
  // compression ratio; once the policy stabilises the greedy mask repeats
  // across epochs and this becomes a pure cache hit.
  std::vector<double> greedy_reward(num_graphs), greedy_compression(num_graphs);
  pool().parallel_for(num_graphs, [&](std::size_t i) {
    nn::NoGradGuard no_grad;
    const nn::Tensor logit_tensor = policy_.logits(contexts_[i].features);
    const Episode ep = run_episode(contexts_[i], policy_.greedy(logit_tensor.value()));
    greedy_reward[i] = ep.reward;
    greedy_compression[i] = ep.compression;
  });
  for (std::size_t i = 0; i < num_graphs; ++i) {
    stats.mean_greedy_reward += greedy_reward[i];
    stats.mean_compression += greedy_compression[i];
  }
  stats.mean_greedy_reward /= n;
  stats.mean_compression /= n;

  for (const GraphContext& ctx : contexts_) {
    stats.cache_hits += ctx.cache->hits();
    stats.cache_misses += ctx.cache->misses();
  }
  stats.cache_hits -= hits_before;
  stats.cache_misses -= misses_before;
  return stats;
}

std::vector<double> ReinforceTrainer::evaluate(const gnn::CoarseningPolicy& policy,
                                               const std::vector<GraphContext>& contexts,
                                               const CoarsePlacer& placer,
                                               ThreadPool* pool) {
  std::vector<double> rewards(contexts.size(), 0.0);
  const auto eval_one = [&](std::size_t i) {
    const sim::Placement p = allocate_with_policy(policy, contexts[i], placer);
    rewards[i] = contexts[i].simulator.relative_throughput(p);
  };
  if (pool != nullptr) {
    pool->parallel_for(contexts.size(), eval_one);
    pool->wait();
  } else {
    for (std::size_t i = 0; i < contexts.size(); ++i) eval_one(i);
  }
  return rewards;
}

}  // namespace sc::rl
