#include "rl/reinforce.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <unordered_map>

#include "analysis/validate.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "common/profile.hpp"
#include "graph/contraction.hpp"
#include "nn/ops.hpp"
#include "rl/episode_cache.hpp"

namespace sc::rl {

namespace {

/// SplitMix64-style seed derivation for the per-sample RNG streams: the
/// resulting mask sequence depends only on (epoch seed, pair index), never on
/// which worker thread evaluates the pair.
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) {
  std::uint64_t z = base + (index + 1) * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

ReinforceTrainer::ReinforceTrainer(gnn::CoarseningPolicy& policy,
                                   std::vector<GraphContext>& contexts,
                                   CoarsePlacer placer, const TrainerConfig& cfg)
    : policy_(policy),
      contexts_(contexts),
      placer_(std::move(placer)),
      cfg_(cfg),
      buffer_(contexts.size(), cfg.buffer_capacity),
      optimizer_(policy.parameters(), cfg.adam),
      rng_(cfg.seed) {
  SC_CHECK(!contexts_.empty(), "trainer needs at least one graph context");
  SC_CHECK(cfg_.on_policy_samples > 0, "need at least one on-policy sample");
  if (cfg_.metis_guidance) seed_metis_guidance();
}

Episode ReinforceTrainer::run_episode(const GraphContext& ctx,
                                      const gnn::EdgeMask& mask) const {
  return cfg_.episode_cache ? evaluate_mask_cached(ctx, mask, placer_)
                            : evaluate_mask(ctx, mask, placer_);
}

ThreadPool& ReinforceTrainer::pool() const {
  return cfg_.pool != nullptr ? *cfg_.pool : ThreadPool::global();
}

std::uint64_t ReinforceTrainer::params_fingerprint() const {
  // SplitMix64-mixed, order-dependent combine over every parameter bit
  // pattern. ~10k doubles for the default policy, so the check costs
  // microseconds against the encoder forward it can save.
  std::uint64_t h = 0x243F6A8885A308D3ULL;
  for (const nn::Tensor& p : policy_.parameters()) {
    for (const double v : p.value()) {
      std::uint64_t z = h ^ std::bit_cast<std::uint64_t>(v);
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      h = z ^ (z >> 31);
    }
  }
  return h;
}

const gnn::BatchedGraphFeatures& ReinforceTrainer::batched_features() {
  if (!batched_built_) {
    std::vector<const gnn::GraphFeatures*> parts;
    parts.reserve(contexts_.size());
    for (const GraphContext& ctx : contexts_) parts.push_back(&ctx.features);
    batched_ = gnn::batch_features(parts);
    batched_built_ = true;
  }
  return batched_;
}

void ReinforceTrainer::seed_metis_guidance() {
  // For every training graph: run the multilevel partitioner as Metis would,
  // treat its device groups as a coarsening, and recover an edge-collapse
  // mask via maximum-spanning-tree selection (Sec. IV-C). These episodes act
  // as informative cold-start samples and are naturally evicted once the
  // policy discovers better masks.
  std::vector<Episode> seeds(contexts_.size());
  pool().parallel_for(contexts_.size(), [&](std::size_t i) {
    const GraphContext& ctx = contexts_[i];
    const sim::Placement metis_p = partition::metis_allocate(
        *ctx.graph, ctx.simulator.spec(), cfg_.partition_opts);
    std::vector<graph::NodeId> groups(metis_p.begin(), metis_p.end());
    const auto mask_bits = graph::mask_from_groups(*ctx.graph, ctx.profile, groups);
    gnn::EdgeMask mask(mask_bits.size());
    for (std::size_t e = 0; e < mask.size(); ++e) mask[e] = mask_bits[e] ? 1 : 0;
    seeds[i] = run_episode(ctx, mask);
  });
  for (std::size_t i = 0; i < seeds.size(); ++i) buffer_.insert(i, std::move(seeds[i]));
}

EpochStats ReinforceTrainer::train_epoch() {
  // Checked builds bracket the epoch with parameter finiteness checks: a NaN
  // that slips into the weights (diverged Adam step, corrupted checkpoint)
  // would otherwise only surface as silently flat rewards epochs later.
  SC_VALIDATE_AT(Deep, nn::check_finite_all(policy_.parameters(), "policy (epoch start)"));
  EpochStats stats;
  const std::size_t num_graphs = contexts_.size();
  const std::size_t samples = cfg_.on_policy_samples;

  std::uint64_t hits_before = 0, misses_before = 0, collisions_before = 0;
  for (const GraphContext& ctx : contexts_) {
    hits_before += ctx.cache->hits();
    misses_before += ctx.cache->misses();
    collisions_before += ctx.cache->collisions();
  }

  std::vector<std::size_t> order(num_graphs);
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng_.shuffle(order);
  // One draw from the trainer RNG seeds every per-sample stream this epoch;
  // drawn on the main thread so results never depend on worker scheduling.
  const std::uint64_t epoch_seed = rng_();

  // 1. Sample on-policy masks for every graph from the epoch-start policy,
  // then evaluate all graph × sample pairs in a single parallel_for: the
  // per-graph sample count alone is often too small to fill the pool.
  //
  // With batched_forward the epoch-start logits come from ONE block-diagonal
  // encoder forward over every context (sliced per graph by edge offset);
  // otherwise each graph runs its own no-grad forward inside the
  // parallel_for. Both paths produce bit-identical logits, and the
  // derive_seed streams make the sampled masks identical too.
  std::vector<std::vector<gnn::EdgeMask>> masks(num_graphs);
  if (cfg_.batched_forward) {
    nn::NoGradGuard no_grad;
    const gnn::BatchedGraphFeatures& batch = batched_features();
    // Parameters are untouched between the previous epoch's greedy pass and
    // this sampling pass, so the carried greedy-pass logits are exactly what
    // this forward would recompute; the fingerprint check catches any
    // out-of-band parameter edit and forces a fresh forward.
    if (!logits_carry_valid_ || carry_fingerprint_ != params_fingerprint()) {
      prof::ScopedTimer timer(prof::Phase::Encode);
      logits_carry_ = policy_.logits(batch.merged).value();
    }
    const std::vector<double>& batched_vals = logits_carry_;
    pool().parallel_for(num_graphs, [&](std::size_t gi) {
      const std::vector<double> vals = gnn::logit_slice(batched_vals, batch, gi);
      prof::ScopedTimer timer(prof::Phase::Sample);
      masks[gi].reserve(samples);
      for (std::size_t s = 0; s < samples; ++s) {
        Rng sample_rng(derive_seed(epoch_seed, gi * samples + s));
        masks[gi].push_back(policy_.sample(vals, sample_rng));
      }
    });
  } else {
    pool().parallel_for(num_graphs, [&](std::size_t gi) {
      nn::NoGradGuard no_grad;
      const nn::Tensor logit_tensor = [&] {
        prof::ScopedTimer timer(prof::Phase::Encode);
        return policy_.logits(contexts_[gi].features);
      }();
      prof::ScopedTimer timer(prof::Phase::Sample);
      masks[gi].reserve(samples);
      for (std::size_t s = 0; s < samples; ++s) {
        Rng sample_rng(derive_seed(epoch_seed, gi * samples + s));
        masks[gi].push_back(policy_.sample(logit_tensor.value(), sample_rng));
      }
    });
  }

  // Dedup identical sampled masks per graph before fanning out: duplicates
  // (common once the policy sharpens) reuse the canonical episode instead of
  // becoming redundant parallel_for jobs. Computed sequentially on the main
  // thread, so it is deterministic and thread-count independent.
  std::vector<Episode> episodes(num_graphs * samples);
  std::vector<std::size_t> canonical(episodes.size());
  std::vector<std::size_t> unique_jobs;
  unique_jobs.reserve(episodes.size());
  for (std::size_t gi = 0; gi < num_graphs; ++gi) {
    std::unordered_map<std::uint64_t, std::vector<std::size_t>> seen;  // hash -> sample idx
    for (std::size_t s = 0; s < samples; ++s) {
      const std::size_t idx = gi * samples + s;
      std::vector<std::size_t>& bucket = seen[hash_mask(masks[gi][s])];
      std::size_t canon = idx;
      for (const std::size_t prev : bucket) {
        if (masks[gi][prev] == masks[gi][s]) {
          canon = gi * samples + prev;
          break;
        }
      }
      canonical[idx] = canon;
      if (canon == idx) {
        bucket.push_back(s);
        unique_jobs.push_back(idx);
      } else {
        ++stats.dedup_hits;
      }
    }
  }
  pool().parallel_for(unique_jobs.size(), [&](std::size_t k) {
    const std::size_t idx = unique_jobs[k];
    episodes[idx] = run_episode(contexts_[idx / samples], masks[idx / samples][idx % samples]);
  });
  for (std::size_t idx = 0; idx < episodes.size(); ++idx) {
    if (canonical[idx] != idx) episodes[idx] = episodes[canonical[idx]];
  }

  // 2. Sequential per-graph policy updates in shuffled order (one optimizer
  // step per graph, as before; masks come from the epoch-start policy).
  for (const std::size_t gi : order) {
    const GraphContext& ctx = contexts_[gi];
    const auto first = episodes.begin() + static_cast<std::ptrdiff_t>(gi * samples);
    std::vector<Episode> batch(first, first + static_cast<std::ptrdiff_t>(samples));

    double on_policy_sum = 0.0;
    for (const Episode& ep : batch) on_policy_sum += ep.reward;
    stats.mean_sample_reward += on_policy_sum / static_cast<double>(batch.size());

    // Mix in the historically best samples.
    for (Episode& ep : buffer_.best(gi, cfg_.buffer_samples)) {
      batch.push_back(std::move(ep));
    }

    // Baseline and policy-gradient loss.
    double baseline = 0.0;
    for (const Episode& ep : batch) baseline += ep.reward;
    baseline /= static_cast<double>(batch.size());

    nn::Tensor logit_tensor = [&] {
      prof::ScopedTimer timer(prof::Phase::Encode);
      return policy_.logits(ctx.features);  // grads recorded
    }();
    // Policy-gradient loss through the fused masked_logprob_sum kernel:
    //   (1/|batch|) Σ_j (-advantage_j) Σ_i log p(mask_j[i] | logit_i)
    // bit-identical to the former add(loss, scale(log_prob(...))) chain.
    std::vector<std::vector<int>> update_masks;
    std::vector<double> coeffs;
    update_masks.reserve(batch.size());
    coeffs.reserve(batch.size());
    for (const Episode& ep : batch) {
      const double advantage = ep.reward - baseline;
      if (std::abs(advantage) < 1e-12) continue;
      update_masks.push_back(ep.mask);
      coeffs.push_back(-advantage);
    }
    nn::Tensor loss =
        nn::masked_logprob_sum(logit_tensor, std::move(update_masks), std::move(coeffs),
                               1.0 / static_cast<double>(batch.size()));
    if (cfg_.entropy_bonus > 0.0) {
      loss = nn::sub(loss, nn::scale(nn::mean(nn::bernoulli_entropy(logit_tensor)),
                                     cfg_.entropy_bonus));
    }
    stats.mean_loss += loss.item();
    {
      prof::ScopedTimer timer(prof::Phase::Backward);
      loss.backward();
      optimizer_.step();
    }

    // Persist this step's on-policy samples for future baselines.
    for (std::size_t s = 0; s < samples; ++s) {
      buffer_.insert(gi, episodes[gi * samples + s]);
    }
    stats.mean_best_reward += buffer_.best_reward(gi);
  }

  const double n = static_cast<double>(num_graphs);
  stats.mean_sample_reward /= n;
  stats.mean_best_reward /= n;
  stats.mean_loss /= n;

  // 3. Greedy evaluation on the training graphs (cheap health signal). With
  // batched_forward the end-of-epoch logits again come from one
  // block-diagonal forward; either way a single logits pass per context
  // yields both the greedy reward and the compression ratio. Once the policy
  // stabilises the greedy mask repeats across epochs and this becomes a pure
  // cache hit.
  std::vector<double> greedy_reward(num_graphs), greedy_compression(num_graphs);
  if (cfg_.batched_forward) {
    nn::NoGradGuard no_grad;
    const gnn::BatchedGraphFeatures& batch = batched_features();
    // Carry these post-update logits into the next epoch's sampling pass
    // (parameters will not change in between).
    {
      prof::ScopedTimer timer(prof::Phase::Encode);
      logits_carry_ = policy_.logits(batch.merged).value();
    }
    logits_carry_valid_ = true;
    carry_fingerprint_ = params_fingerprint();
    const std::vector<double>& batched_vals = logits_carry_;
    pool().parallel_for(num_graphs, [&](std::size_t i) {
      const std::vector<double> vals = gnn::logit_slice(batched_vals, batch, i);
      const Episode ep = run_episode(contexts_[i], policy_.greedy(vals));
      greedy_reward[i] = ep.reward;
      greedy_compression[i] = ep.compression;
    });
  } else {
    pool().parallel_for(num_graphs, [&](std::size_t i) {
      nn::NoGradGuard no_grad;
      const nn::Tensor logit_tensor = [&] {
        prof::ScopedTimer timer(prof::Phase::Encode);
        return policy_.logits(contexts_[i].features);
      }();
      const Episode ep = run_episode(contexts_[i], policy_.greedy(logit_tensor.value()));
      greedy_reward[i] = ep.reward;
      greedy_compression[i] = ep.compression;
    });
  }
  for (std::size_t i = 0; i < num_graphs; ++i) {
    stats.mean_greedy_reward += greedy_reward[i];
    stats.mean_compression += greedy_compression[i];
  }
  stats.mean_greedy_reward /= n;
  stats.mean_compression /= n;

  for (const GraphContext& ctx : contexts_) {
    stats.cache_hits += ctx.cache->hits();
    stats.cache_misses += ctx.cache->misses();
    stats.cache_collisions += ctx.cache->collisions();
  }
  stats.cache_hits -= hits_before;
  stats.cache_misses -= misses_before;
  stats.cache_collisions -= collisions_before;
  ++epochs_completed_;
  SC_VALIDATE_AT(Deep, nn::check_finite_all(policy_.parameters(), "policy (epoch end)"));
  return stats;
}

TrainerState ReinforceTrainer::export_state() const {
  TrainerState state;
  state.epochs_completed = epochs_completed_;
  state.rng_state = rng_.state();
  for (const nn::Tensor& p : policy_.parameters()) {
    state.param_shapes.push_back(p.shape());
    state.param_values.push_back(p.value());
  }
  state.adam = optimizer_.export_state();
  state.buffer_capacity = buffer_.capacity();
  state.buffer_entries = buffer_.entries();
  return state;
}

void ReinforceTrainer::import_state(const TrainerState& state) {
  // Validate everything against this trainer before mutating anything, so a
  // mismatched checkpoint never applies partial state.
  const std::vector<nn::Tensor> params = policy_.parameters();
  SC_CHECK(state.param_values.size() == params.size(),
           "trainer checkpoint has " << state.param_values.size() << " tensors, model expects "
                                     << params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    SC_CHECK(state.param_shapes[i] == params[i].shape(),
             "tensor " << i << " shape mismatch between trainer checkpoint and model");
  }
  SC_CHECK(state.buffer_entries.size() == contexts_.size(),
           "trainer checkpoint covers " << state.buffer_entries.size()
                                        << " graphs, trainer has " << contexts_.size());
  SC_CHECK(state.buffer_capacity == buffer_.capacity(),
           "trainer checkpoint buffer capacity " << state.buffer_capacity
                                                 << " != configured capacity "
                                                 << buffer_.capacity());

  for (std::size_t i = 0; i < params.size(); ++i) {
    const_cast<nn::Tensor&>(params[i]).value() = state.param_values[i];
  }
  optimizer_.import_state(state.adam);
  rng_.set_state(state.rng_state);
  buffer_.restore(state.buffer_entries);
  epochs_completed_ = state.epochs_completed;
  // Parameters changed out-of-band for the carry; force a fresh forward.
  logits_carry_valid_ = false;
}

std::vector<double> ReinforceTrainer::evaluate(const gnn::CoarseningPolicy& policy,
                                               const std::vector<GraphContext>& contexts,
                                               const CoarsePlacer& placer,
                                               ThreadPool* pool) {
  std::vector<double> rewards(contexts.size(), 0.0);
  const auto eval_one = [&](std::size_t i) {
    const sim::Placement p = allocate_with_policy(policy, contexts[i], placer);
    rewards[i] = contexts[i].simulator.relative_throughput(p);
  };
  if (pool != nullptr) {
    // parallel_for blocks until every task has run (asserted by
    // ThreadPool.ParallelForBlocksUntilComplete), so no extra wait() here.
    pool->parallel_for(contexts.size(), eval_one);
  } else {
    for (std::size_t i = 0; i < contexts.size(); ++i) eval_one(i);
  }
  return rewards;
}

}  // namespace sc::rl
