#include "rl/reinforce.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/log.hpp"
#include "graph/contraction.hpp"
#include "nn/ops.hpp"

namespace sc::rl {

ReinforceTrainer::ReinforceTrainer(gnn::CoarseningPolicy& policy,
                                   std::vector<GraphContext>& contexts,
                                   CoarsePlacer placer, const TrainerConfig& cfg)
    : policy_(policy),
      contexts_(contexts),
      placer_(std::move(placer)),
      cfg_(cfg),
      buffer_(contexts.size(), cfg.buffer_capacity),
      optimizer_(policy.parameters(), cfg.adam),
      rng_(cfg.seed) {
  SC_CHECK(!contexts_.empty(), "trainer needs at least one graph context");
  SC_CHECK(cfg_.on_policy_samples > 0, "need at least one on-policy sample");
  if (cfg_.metis_guidance) seed_metis_guidance();
}

void ReinforceTrainer::seed_metis_guidance() {
  // For every training graph: run the multilevel partitioner as Metis would,
  // treat its device groups as a coarsening, and recover an edge-collapse
  // mask via maximum-spanning-tree selection (Sec. IV-C). These episodes act
  // as informative cold-start samples and are naturally evicted once the
  // policy discovers better masks.
  ThreadPool& pool = ThreadPool::global();
  std::vector<Episode> seeds(contexts_.size());
  pool.parallel_for(contexts_.size(), [&](std::size_t i) {
    const GraphContext& ctx = contexts_[i];
    const sim::Placement metis_p = partition::metis_allocate(
        *ctx.graph, ctx.simulator.spec(), cfg_.partition_opts);
    std::vector<graph::NodeId> groups(metis_p.begin(), metis_p.end());
    const auto mask_bits = graph::mask_from_groups(*ctx.graph, ctx.profile, groups);
    gnn::EdgeMask mask(mask_bits.size());
    for (std::size_t e = 0; e < mask.size(); ++e) mask[e] = mask_bits[e] ? 1 : 0;
    seeds[i] = evaluate_mask(ctx, mask, placer_);
  });
  pool.wait();
  for (std::size_t i = 0; i < seeds.size(); ++i) buffer_.insert(i, std::move(seeds[i]));
}

EpochStats ReinforceTrainer::train_epoch() {
  EpochStats stats;
  ThreadPool& pool = ThreadPool::global();

  std::vector<std::size_t> order(contexts_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng_.shuffle(order);

  for (const std::size_t gi : order) {
    const GraphContext& ctx = contexts_[gi];

    // 1. Sample on-policy masks without recording gradients.
    std::vector<gnn::EdgeMask> masks;
    {
      nn::NoGradGuard no_grad;
      const nn::Tensor logit_tensor = policy_.logits(ctx.features);
      for (std::size_t s = 0; s < cfg_.on_policy_samples; ++s) {
        masks.push_back(policy_.sample(logit_tensor.value(), rng_));
      }
    }

    // 2. Evaluate rewards in parallel (contract + partition + simulate).
    std::vector<Episode> episodes(masks.size());
    pool.parallel_for(masks.size(), [&](std::size_t s) {
      episodes[s] = evaluate_mask(ctx, masks[s], placer_);
    });
    pool.wait();

    double on_policy_sum = 0.0;
    for (const Episode& ep : episodes) on_policy_sum += ep.reward;
    stats.mean_sample_reward += on_policy_sum / static_cast<double>(episodes.size());

    // 3. Mix in the historically best samples.
    for (Episode& ep : buffer_.best(gi, cfg_.buffer_samples)) {
      episodes.push_back(std::move(ep));
    }

    // 4. Baseline and policy-gradient loss.
    double baseline = 0.0;
    for (const Episode& ep : episodes) baseline += ep.reward;
    baseline /= static_cast<double>(episodes.size());

    nn::Tensor logit_tensor = policy_.logits(ctx.features);  // grads recorded
    nn::Tensor loss = nn::Tensor::scalar(0.0);
    for (const Episode& ep : episodes) {
      const double advantage = ep.reward - baseline;
      if (std::abs(advantage) < 1e-12) continue;
      loss = nn::add(loss, nn::scale(policy_.log_prob(logit_tensor, ep.mask), -advantage));
    }
    loss = nn::scale(loss, 1.0 / static_cast<double>(episodes.size()));
    if (cfg_.entropy_bonus > 0.0) {
      loss = nn::sub(loss, nn::scale(nn::mean(nn::bernoulli_entropy(logit_tensor)),
                                     cfg_.entropy_bonus));
    }
    stats.mean_loss += loss.item();
    loss.backward();
    optimizer_.step();

    // 5. Persist this step's best samples for future baselines.
    for (std::size_t s = 0; s < masks.size(); ++s) {
      buffer_.insert(gi, episodes[s]);  // the first |masks| entries are on-policy
    }
    stats.mean_best_reward += buffer_.best_reward(gi);
  }

  const double n = static_cast<double>(contexts_.size());
  stats.mean_sample_reward /= n;
  stats.mean_best_reward /= n;
  stats.mean_loss /= n;

  // Greedy evaluation on the training graphs (cheap health signal).
  {
    const auto rewards = evaluate(policy_, contexts_, placer_, &pool);
    double sum = 0.0;
    for (const double r : rewards) sum += r;
    stats.mean_greedy_reward = sum / n;
  }
  {
    nn::NoGradGuard no_grad;
    double comp = 0.0;
    for (const GraphContext& ctx : contexts_) {
      const nn::Tensor logit_tensor = policy_.logits(ctx.features);
      const auto mask = policy_.greedy(logit_tensor.value());
      comp += gnn::CoarseningPolicy::apply(*ctx.graph, ctx.profile, mask)
                  .compression_ratio();
    }
    stats.mean_compression = comp / n;
  }
  return stats;
}

std::vector<double> ReinforceTrainer::evaluate(const gnn::CoarseningPolicy& policy,
                                               const std::vector<GraphContext>& contexts,
                                               const CoarsePlacer& placer,
                                               ThreadPool* pool) {
  std::vector<double> rewards(contexts.size(), 0.0);
  const auto eval_one = [&](std::size_t i) {
    const sim::Placement p = allocate_with_policy(policy, contexts[i], placer);
    rewards[i] = contexts[i].simulator.relative_throughput(p);
  };
  if (pool != nullptr) {
    pool->parallel_for(contexts.size(), eval_one);
    pool->wait();
  } else {
    for (std::size_t i = 0; i < contexts.size(); ++i) eval_one(i);
  }
  return rewards;
}

}  // namespace sc::rl
