// REINFORCE training of the coarsening policy (Sec. III "Training").
//
//   ∇J(θ) = (1/N) Σ_n ∇ log π_θ(G_y^n) [r(G_y^n) − b]
//
// with b the average reward of the N on-policy samples plus up to M
// historically best samples from the per-graph memory buffer. The buffer is
// optionally pre-seeded with Metis-guided masks (Sec. IV-C) inferred via
// maximum-spanning-tree edge recovery.
#pragma once

#include <cstdint>
#include <optional>

#include "common/thread_pool.hpp"
#include "nn/adam.hpp"
#include "rl/buffer.hpp"
#include "rl/rollout.hpp"
#include "rl/trainer_state.hpp"

namespace sc::rl {

struct TrainerConfig {
  std::size_t on_policy_samples = 3;  ///< paper: 3 on-policy samples per step
  std::size_t buffer_samples = 3;     ///< paper: up to 3 buffer samples
  std::size_t buffer_capacity = 5;
  nn::AdamConfig adam{};              ///< paper: Adam, lr 1e-3
  std::uint64_t seed = 7;
  bool metis_guidance = false;        ///< seed buffers with Metis-derived masks
  /// Entropy-bonus coefficient (0 disables): keeps collapse probabilities
  /// from saturating prematurely, stabilising long fine-tuning runs.
  double entropy_bonus = 0.0;
  partition::PartitionOptions partition_opts{};
  /// Memoize evaluate_mask per context (see episode_cache.hpp). Off
  /// re-evaluates every mask from scratch — only useful for A/B perf runs.
  bool episode_cache = true;
  /// Run the epoch-start sampling pass and the greedy health pass as a single
  /// block-diagonal encoder forward over all contexts (see
  /// gnn::BatchedGraphFeatures) instead of one forward per graph. Logits —
  /// and therefore every epoch statistic — are bit-identical either way; off
  /// is only useful for A/B perf runs.
  bool batched_forward = true;
  /// Pool for mask evaluation fan-out; nullptr = ThreadPool::global(). Epoch
  /// stats are identical for any pool size at a fixed seed.
  ThreadPool* pool = nullptr;
};

struct EpochStats {
  double mean_sample_reward = 0.0;  ///< average reward of on-policy samples
  double mean_best_reward = 0.0;    ///< average best-buffered reward per graph
  double mean_greedy_reward = 0.0;  ///< reward of the deterministic policy
  double mean_compression = 0.0;    ///< mean compression ratio of greedy masks
  double mean_loss = 0.0;
  std::uint64_t cache_hits = 0;    ///< episode-cache hits this epoch
  std::uint64_t cache_misses = 0;  ///< episode-cache misses (fresh evaluations)
  /// Episode-cache 64-bit hash collisions observed this epoch (a colliding
  /// insert clobbers the resident entry; see EpisodeCache::collisions()).
  std::uint64_t cache_collisions = 0;
  /// Sampled masks that duplicated an earlier sample of the same graph this
  /// epoch and were deduplicated before evaluation (the duplicate reuses the
  /// canonical episode instead of becoming a parallel_for job).
  std::uint64_t dedup_hits = 0;
};

class ReinforceTrainer {
public:
  /// The trainer borrows the policy and contexts; both must outlive it.
  ReinforceTrainer(gnn::CoarseningPolicy& policy, std::vector<GraphContext>& contexts,
                   CoarsePlacer placer, const TrainerConfig& cfg);

  /// One pass over every context (one policy update per graph).
  EpochStats train_epoch();

  /// Evaluates the deterministic (greedy) policy over `contexts` (which may
  /// be a different split than the training contexts).
  static std::vector<double> evaluate(const gnn::CoarseningPolicy& policy,
                                      const std::vector<GraphContext>& contexts,
                                      const CoarsePlacer& placer,
                                      ThreadPool* pool = nullptr);

  const SampleBuffer& buffer() const { return buffer_; }
  const TrainerConfig& config() const { return cfg_; }

  /// Epochs this trainer has completed (including epochs restored via
  /// import_state); drives resume bookkeeping in the framework and tools.
  std::uint64_t epochs_completed() const { return epochs_completed_; }

  /// Snapshot of everything that shapes future epochs: parameter values,
  /// Adam moments/step, the trainer RNG stream, the epoch counter and the
  /// best-sample buffer. Resuming from this snapshot replays the exact
  /// learning trajectory of an uninterrupted run (see trainer_state.hpp).
  TrainerState export_state() const;

  /// Restores a snapshot into this trainer (and the borrowed policy). The
  /// checkpoint must match the model architecture and the number of training
  /// graphs; mismatches throw without applying partial state.
  void import_state(const TrainerState& state);

private:
  void seed_metis_guidance();
  /// evaluate_mask, memoized through the context's episode cache when
  /// cfg_.episode_cache is on.
  Episode run_episode(const GraphContext& ctx, const gnn::EdgeMask& mask) const;
  ThreadPool& pool() const;
  /// Lazily packs all contexts into one block-diagonal batch (features are
  /// per-graph constants, so this is built once and reused every epoch; the
  /// borrowed contexts must not be reshaped while the trainer lives).
  const gnn::BatchedGraphFeatures& batched_features();
  /// Order-dependent hash over every policy parameter value; guards the
  /// cross-epoch logit carry below against out-of-band parameter edits.
  std::uint64_t params_fingerprint() const;

  gnn::CoarseningPolicy& policy_;
  std::vector<GraphContext>& contexts_;
  CoarsePlacer placer_;
  TrainerConfig cfg_;
  SampleBuffer buffer_;
  nn::Adam optimizer_;
  Rng rng_;
  std::uint64_t epochs_completed_ = 0;
  gnn::BatchedGraphFeatures batched_;
  bool batched_built_ = false;
  /// Batched logits carried from the previous epoch's greedy pass. Parameters
  /// do not change between the end of epoch e and the start of epoch e+1, so
  /// the next sampling pass reuses these values instead of rerunning the
  /// encoder — halving actor-side forwards in steady state, bit-identically.
  /// Only the batched path carries; validity is re-checked against
  /// params_fingerprint() so external parameter edits force a fresh forward.
  std::vector<double> logits_carry_;
  bool logits_carry_valid_ = false;
  std::uint64_t carry_fingerprint_ = 0;
};

}  // namespace sc::rl
