#include "rl/episode_cache.hpp"

#include "common/error.hpp"

namespace sc::rl {

namespace {

std::uint64_t splitmix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t hash_mask(const gnn::EdgeMask& mask) {
  std::uint64_t h = splitmix(mask.size() + 0x9E3779B97F4A7C15ULL);
  std::uint64_t word = 0;
  unsigned bits = 0;
  for (const int b : mask) {
    word = (word << 1) | static_cast<std::uint64_t>(b != 0);
    if (++bits == 64) {
      h = splitmix(h * 0x9E3779B97F4A7C15ULL ^ word);
      word = 0;
      bits = 0;
    }
  }
  // Tail word, salted with a sentinel bit so "0" and "00" hash differently.
  if (bits > 0) h = splitmix(h * 0x9E3779B97F4A7C15ULL ^ (word | (1ULL << bits)));
  return h;
}

EpisodeCache::EpisodeCache(std::size_t capacity) : capacity_(capacity) {
  SC_CHECK(capacity_ > 0, "episode cache capacity must be positive");
}

std::optional<Episode> EpisodeCache::lookup(std::uint64_t key,
                                            const gnn::EdgeMask& mask) const {
  Shard& shard = shard_of(key);
  {
    SharedReaderLock lock(shard.mutex);
    const auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      if (it->second.mask == mask) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second;
      }
      collisions_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

void EpisodeCache::insert(std::uint64_t key, Episode ep) {
  // Lock order: order_mutex_ first, then at most one shard at a time. Never
  // hold a shard lock while taking order_mutex_ (lookup takes only a shard
  // lock, so readers never interact with this ordering).
  MutexLock order_lock(order_mutex_);
  {
    Shard& shard = shard_of(key);
    SharedWriterLock lock(shard.mutex);
    const auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      // Same key resident: overwrite in place (keeps its insertion slot). A
      // differing mask is a genuine 64-bit collision — the resident entry is
      // clobbered, but counted so it is observable.
      if (it->second.mask != ep.mask) collisions_.fetch_add(1, std::memory_order_relaxed);
      it->second = std::move(ep);
      return;
    }
  }
  while (size_ >= capacity_) {
    const std::uint64_t victim = order_.front();
    order_.pop_front();
    {
      Shard& shard = shard_of(victim);
      SharedWriterLock lock(shard.mutex);
      shard.entries.erase(victim);
    }
    --size_;
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  {
    Shard& shard = shard_of(key);
    SharedWriterLock lock(shard.mutex);
    shard.entries.emplace(key, std::move(ep));
  }
  order_.push_back(key);
  ++size_;
}

std::size_t EpisodeCache::size() const {
  MutexLock lock(order_mutex_);
  return size_;
}

void EpisodeCache::clear() {
  MutexLock order_lock(order_mutex_);
  for (auto& shard : shards_) {
    SharedWriterLock lock(shard.mutex);
    shard.entries.clear();
  }
  order_.clear();
  size_ = 0;
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  collisions_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
}

}  // namespace sc::rl
