// Curriculum learning driver (Sec. IV-C): train the same policy through a
// sequence of levels (small graphs / few devices first), fine-tuning at each
// level, optionally with Metis-guided cold-start samples.
#pragma once

#include <string>
#include <vector>

#include "gen/dataset.hpp"
#include "rl/reinforce.hpp"

namespace sc::rl {

struct CurriculumLevel {
  std::string name;
  std::vector<graph::StreamGraph> graphs;  ///< training graphs for this level
  sim::ClusterSpec spec;
  std::size_t epochs = 1;
};

struct LevelReport {
  std::string name;
  std::vector<EpochStats> epochs;
};

/// Builds a level from a generated dataset split.
CurriculumLevel make_level(std::string name, std::vector<graph::StreamGraph> graphs,
                           const gen::GeneratorConfig& cfg, std::size_t epochs);

/// Trains `policy` through the levels in order, carrying the parameters
/// forward (the paper's graph-size curriculum). Returns per-level stats.
std::vector<LevelReport> run_curriculum(gnn::CoarseningPolicy& policy,
                                        std::vector<CurriculumLevel>& levels,
                                        const CoarsePlacer& placer,
                                        const TrainerConfig& cfg);

}  // namespace sc::rl
