// Thread-safe memoization of evaluate_mask results, one cache per
// GraphContext. Sampled edge-masks repeat heavily once the policy's entropy
// drops (and the greedy health-signal mask repeats across epochs); a hit
// skips contraction, multilevel partitioning and simulation entirely.
//
// Keys are a 64-bit SplitMix-mixed hash of the packed mask bits. The full
// mask is stored with each entry and compared on lookup, so a (vanishingly
// unlikely) 64-bit collision reports a miss instead of returning a wrong
// episode.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <shared_mutex>
#include <unordered_map>

#include "rl/rollout.hpp"

namespace sc::rl {

/// 64-bit hash of an edge mask (bits packed into words, SplitMix64-mixed,
/// length-salted).
std::uint64_t hash_mask(const gnn::EdgeMask& mask);

class EpisodeCache {
public:
  /// Returns the memoized episode for `mask` (keyed by `key = hash_mask(mask)`)
  /// or nullopt. Concurrent lookups take a shared lock only.
  std::optional<Episode> lookup(std::uint64_t key, const gnn::EdgeMask& mask) const;

  /// Records an evaluated episode (ep.mask must be the evaluated mask).
  /// Concurrent inserts of the same mask overwrite with identical data.
  void insert(std::uint64_t key, Episode ep);

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  std::size_t size() const;
  void clear();

private:
  mutable std::shared_mutex mutex_;
  std::unordered_map<std::uint64_t, Episode> entries_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
};

}  // namespace sc::rl
