// Thread-safe memoization of evaluate_mask results, one cache per
// GraphContext. Sampled edge-masks repeat heavily once the policy's entropy
// drops (and the greedy health-signal mask repeats across epochs); a hit
// skips contraction, multilevel partitioning and simulation entirely.
//
// Keys are a 64-bit SplitMix-mixed hash of the packed mask bits. The full
// mask is stored with each entry and compared on lookup, so a (vanishingly
// unlikely) 64-bit collision reports a miss instead of returning a wrong
// episode; colliding inserts clobber the resident entry and are counted in
// collisions() so long runs can observe them instead of losing entries
// silently.
//
// Concurrency: the entry map is split into kNumShards shards, each guarded
// by its own shared_mutex. lookup() — the hot concurrent-reader path in both
// training and the serving tier — takes a single per-shard shared lock, so
// readers on different shards never contend and readers on the same shard
// share the lock. Mutations (insert/clear) additionally serialize on a
// global order mutex that guards the FIFO insertion-order deque; writers are
// therefore mutually exclusive (documented single-writer-at-a-time), which
// keeps the eviction order globally FIFO — identical to the pre-sharded
// behaviour — while never blocking readers of untouched shards.
//
// The cache is capacity-bounded (FIFO eviction by insertion order) so
// long training runs cannot grow it without bound: a policy that keeps
// exploring produces a stream of unique masks, and before the bound an
// overnight run could accumulate gigabytes of dead entries per graph.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>

#include "common/thread_annotations.hpp"
#include "rl/rollout.hpp"

namespace sc::rl {

/// 64-bit hash of an edge mask (bits packed into words, SplitMix64-mixed,
/// length-salted).
std::uint64_t hash_mask(const gnn::EdgeMask& mask);

class EpisodeCache {
public:
  /// Default per-graph entry bound. An epoch touches ~(samples + 1) unique
  /// masks per graph, so 4096 covers ~1000 epochs of fresh exploration while
  /// capping worst-case memory at a few MB per graph.
  static constexpr std::size_t kDefaultCapacity = 4096;

  /// Lock shards; a power of two so shard selection is a mask. Sixteen keeps
  /// reader collisions rare at realistic worker counts without bloating the
  /// per-cache footprint.
  static constexpr std::size_t kNumShards = 16;

  explicit EpisodeCache(std::size_t capacity = kDefaultCapacity);

  /// Returns the memoized episode for `mask` (keyed by `key = hash_mask(mask)`)
  /// or nullopt. Concurrent lookups take a shared lock on one shard only.
  std::optional<Episode> lookup(std::uint64_t key, const gnn::EdgeMask& mask) const;

  /// Records an evaluated episode (ep.mask must be the evaluated mask).
  /// Concurrent inserts of the same mask overwrite with identical data. At
  /// capacity the globally oldest entry (insertion order) is evicted first.
  /// Writers serialize on the order mutex; readers of other shards proceed.
  void insert(std::uint64_t key, Episode ep) SC_EXCLUDES(order_mutex_);

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  /// Times a lookup or insert met a resident entry with the same 64-bit key
  /// but a different mask (a true hash collision).
  std::uint64_t collisions() const { return collisions_.load(std::memory_order_relaxed); }
  std::uint64_t evictions() const { return evictions_.load(std::memory_order_relaxed); }
  std::size_t capacity() const { return capacity_; }
  std::size_t size() const SC_EXCLUDES(order_mutex_);
  void clear() SC_EXCLUDES(order_mutex_);

private:
  struct Shard {
    mutable SharedMutex mutex;
    std::unordered_map<std::uint64_t, Episode> entries SC_GUARDED_BY(mutex);
  };

  Shard& shard_of(std::uint64_t key) const {
    // hash_mask output is SplitMix-mixed, so the top bits are as uniform as
    // any; unordered_map consumes the low bits, keep the two disjoint.
    return shards_[(key >> 60) & (kNumShards - 1)];
  }

  mutable std::array<Shard, kNumShards> shards_;
  /// Guards order_ / size_ and serializes all mutations (see header comment).
  mutable Mutex order_mutex_;
  /// Live keys in insertion order; each live key appears exactly once
  /// (overwrites of an existing key keep its original slot).
  std::deque<std::uint64_t> order_ SC_GUARDED_BY(order_mutex_);
  std::size_t size_ SC_GUARDED_BY(order_mutex_) = 0;  ///< total live entries
  std::size_t capacity_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  mutable std::atomic<std::uint64_t> collisions_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace sc::rl
