#include "rl/trainer_state.hpp"

#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/error.hpp"
#include "nn/serialize.hpp"

namespace sc::rl {

namespace {

constexpr const char* kMagic = "sctrainer";
constexpr const char* kEndMarker = "end";

/// Reads one whitespace-delimited token; throws on EOF/stream failure with a
/// message naming what was expected (truncated files fail here, loudly).
std::string next_token(std::istream& is, const char* what) {
  std::string tok;
  is >> tok;
  SC_CHECK(static_cast<bool>(is),
           "truncated trainer checkpoint: expected " << what << ", hit end of stream");
  return tok;
}

void expect_token(std::istream& is, const char* literal) {
  const std::string tok = next_token(is, literal);
  SC_CHECK(tok == literal, "malformed trainer checkpoint: expected '"
                               << literal << "', got '" << tok << "'");
}

std::uint64_t read_u64(std::istream& is, const char* what) {
  const std::string tok = next_token(is, what);
  SC_CHECK(!tok.empty() && tok.find_first_not_of("0123456789") == std::string::npos,
           "malformed trainer checkpoint: " << what << " must be a non-negative integer, got '"
                                            << tok << "'");
  try {
    return std::stoull(tok);
  } catch (const std::exception&) {
    SC_CHECK(false, "malformed trainer checkpoint: " << what << " out of range: '" << tok << "'");
  }
  return 0;  // unreachable
}

double read_hex_double(std::istream& is, const char* what) {
  return nn::double_from_hex(next_token(is, what));
}

std::uint64_t read_hex_u64(std::istream& is, const char* what) {
  const std::string tok = next_token(is, what);
  SC_CHECK(tok.size() == 16 && tok.find_first_not_of("0123456789abcdef") == std::string::npos,
           "malformed trainer checkpoint: " << what << " must be 16 hex digits, got '" << tok
                                            << "'");
  return std::stoull(tok, nullptr, 16);
}

std::string u64_to_hex(std::uint64_t bits) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[bits & 0xF];
    bits >>= 4;
  }
  return out;
}

void write_double_block(std::ostream& os, const std::vector<double>& values) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    os << nn::double_to_hex(values[i]) << (i + 1 == values.size() ? '\n' : ' ');
  }
  if (values.empty()) os << '\n';
}

}  // namespace

void write_trainer_state(std::ostream& os, const TrainerState& state) {
  SC_CHECK(state.param_shapes.size() == state.param_values.size(),
           "trainer state has " << state.param_shapes.size() << " shapes but "
                                << state.param_values.size() << " value tensors");
  os << kMagic << " v" << TrainerState::kVersion << '\n';
  os << "epoch " << state.epochs_completed << '\n';
  os << "rng";
  for (const std::uint64_t s : state.rng_state) os << ' ' << u64_to_hex(s);
  os << '\n';

  os << "params " << state.param_values.size() << '\n';
  for (std::size_t t = 0; t < state.param_values.size(); ++t) {
    std::size_t expect = 1;
    os << "tensor " << state.param_shapes[t].size();
    for (const std::size_t d : state.param_shapes[t]) {
      os << ' ' << d;
      expect *= d;
    }
    os << '\n';
    SC_CHECK(state.param_values[t].size() == expect,
             "tensor " << t << " shape implies " << expect << " values, state holds "
                       << state.param_values[t].size());
    write_double_block(os, state.param_values[t]);
  }

  SC_CHECK(state.adam.m.size() == state.adam.v.size(),
           "Adam state has " << state.adam.m.size() << " m tensors but " << state.adam.v.size()
                             << " v tensors");
  os << "adam " << state.adam.t << ' ' << state.adam.m.size() << '\n';
  for (std::size_t t = 0; t < state.adam.m.size(); ++t) {
    SC_CHECK(state.adam.m[t].size() == state.adam.v[t].size(),
             "Adam moment size mismatch at tensor " << t);
    os << "moments " << state.adam.m[t].size() << '\n';
    write_double_block(os, state.adam.m[t]);
    write_double_block(os, state.adam.v[t]);
  }

  os << "buffer " << state.buffer_entries.size() << ' ' << state.buffer_capacity << '\n';
  for (const auto& list : state.buffer_entries) {
    os << "graph " << list.size() << '\n';
    for (const Episode& ep : list) {
      os << "ep " << nn::double_to_hex(ep.reward) << ' ' << nn::double_to_hex(ep.compression)
         << ' ' << ep.mask.size() << ' ';
      for (const int b : ep.mask) os << (b != 0 ? '1' : '0');
      os << '\n';
    }
  }

  os << kEndMarker << ' ' << kMagic << '\n';
  SC_CHECK(os.good(), "trainer checkpoint write failed");
}

TrainerState read_trainer_state(std::istream& is) {
  TrainerState state;

  const std::string magic = next_token(is, "magic header");
  SC_CHECK(magic == kMagic,
           "not a trainer checkpoint (bad magic '" << magic << "', expected '" << kMagic << "')");
  const std::string version = next_token(is, "format version");
  SC_CHECK(version.size() >= 2 && version[0] == 'v',
           "malformed trainer checkpoint: bad version token '" << version << "'");
  std::uint64_t v = 0;
  {
    const std::string digits = version.substr(1);
    SC_CHECK(!digits.empty() && digits.find_first_not_of("0123456789") == std::string::npos,
             "malformed trainer checkpoint: bad version token '" << version << "'");
    v = std::stoull(digits);
  }
  SC_CHECK(v >= 1 && v <= TrainerState::kVersion,
           "trainer checkpoint version " << v << " is not supported (this build reads up to v"
                                         << TrainerState::kVersion << ")");

  expect_token(is, "epoch");
  state.epochs_completed = read_u64(is, "epoch counter");

  expect_token(is, "rng");
  for (auto& s : state.rng_state) s = read_hex_u64(is, "rng state word");

  expect_token(is, "params");
  const std::uint64_t num_params = read_u64(is, "parameter tensor count");
  state.param_shapes.resize(num_params);
  state.param_values.resize(num_params);
  for (std::uint64_t t = 0; t < num_params; ++t) {
    expect_token(is, "tensor");
    const std::uint64_t dims = read_u64(is, "tensor rank");
    SC_CHECK(dims <= 8, "implausible tensor rank " << dims << " in trainer checkpoint");
    std::size_t size = 1;
    state.param_shapes[t].resize(dims);
    for (auto& d : state.param_shapes[t]) {
      d = static_cast<std::size_t>(read_u64(is, "tensor dimension"));
      SC_CHECK(d > 0 && size <= (1ULL << 32) / d,
               "implausible tensor shape in trainer checkpoint");
      size *= d;
    }
    state.param_values[t].resize(size);
    for (double& x : state.param_values[t]) x = read_hex_double(is, "parameter value");
  }

  expect_token(is, "adam");
  {
    const std::string tok = next_token(is, "Adam step counter");
    try {
      state.adam.t = std::stol(tok);
    } catch (const std::exception&) {
      SC_CHECK(false, "malformed trainer checkpoint: bad Adam step counter '" << tok << "'");
    }
  }
  const std::uint64_t num_moments = read_u64(is, "Adam moment tensor count");
  state.adam.m.resize(num_moments);
  state.adam.v.resize(num_moments);
  for (std::uint64_t t = 0; t < num_moments; ++t) {
    expect_token(is, "moments");
    const std::uint64_t size = read_u64(is, "Adam moment size");
    SC_CHECK(size <= (1ULL << 32), "implausible Adam moment size in trainer checkpoint");
    state.adam.m[t].resize(size);
    state.adam.v[t].resize(size);
    for (double& x : state.adam.m[t]) x = read_hex_double(is, "Adam m value");
    for (double& x : state.adam.v[t]) x = read_hex_double(is, "Adam v value");
  }

  expect_token(is, "buffer");
  const std::uint64_t num_graphs = read_u64(is, "buffer graph count");
  SC_CHECK(num_graphs <= (1ULL << 24), "implausible buffer graph count in trainer checkpoint");
  state.buffer_capacity = static_cast<std::size_t>(read_u64(is, "buffer capacity"));
  state.buffer_entries.resize(num_graphs);
  for (auto& list : state.buffer_entries) {
    expect_token(is, "graph");
    const std::uint64_t count = read_u64(is, "buffer episode count");
    SC_CHECK(count <= state.buffer_capacity,
             "buffer list of " << count << " episodes exceeds capacity "
                               << state.buffer_capacity);
    list.resize(count);
    for (Episode& ep : list) {
      expect_token(is, "ep");
      ep.reward = read_hex_double(is, "episode reward");
      ep.compression = read_hex_double(is, "episode compression");
      const std::uint64_t mask_len = read_u64(is, "episode mask length");
      SC_CHECK(mask_len <= (1ULL << 32), "implausible mask length in trainer checkpoint");
      const std::string bits = next_token(is, "episode mask bits");
      SC_CHECK(bits.size() == mask_len,
               "episode mask has " << bits.size() << " bits, header says " << mask_len);
      ep.mask.resize(mask_len);
      for (std::size_t i = 0; i < bits.size(); ++i) {
        SC_CHECK(bits[i] == '0' || bits[i] == '1',
                 "episode mask bits must be 0/1, got '" << bits[i] << "'");
        ep.mask[i] = bits[i] == '1' ? 1 : 0;
      }
    }
  }

  expect_token(is, kEndMarker);
  expect_token(is, kMagic);

  std::string tail;
  is >> tail;
  SC_CHECK(tail.empty() && is.eof(),
           "trailing garbage after trainer checkpoint end marker: '" << tail << "...'");
  return state;
}

void save_trainer_state(const std::string& path, const TrainerState& state) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    SC_CHECK(os.good(), "cannot open '" << tmp << "' for writing");
    write_trainer_state(os, state);
    os.flush();
    if (!os.good()) {
      os.close();
      std::remove(tmp.c_str());
      SC_CHECK(false, "write to '" << tmp << "' failed (disk full or I/O error?)");
    }
  }
  // Atomic publication: the destination either keeps its previous complete
  // contents or becomes the new complete checkpoint, never a partial file.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    SC_CHECK(false, "cannot publish trainer checkpoint: rename('" << tmp << "' -> '" << path
                                                                  << "') failed");
  }
}

TrainerState load_trainer_state(const std::string& path) {
  std::ifstream is(path);
  SC_CHECK(is.good(), "cannot open trainer checkpoint '" << path << "' for reading");
  return read_trainer_state(is);
}

}  // namespace sc::rl
