// SampleBuffer: per-graph memory of the historically best edge-collapse
// samples (the paper keeps "up to 3 samples from the memory buffer" per
// training step, seeded with Metis-guided masks during cold start).
#pragma once

#include <cstddef>
#include <vector>

#include "rl/rollout.hpp"

namespace sc::rl {

class SampleBuffer {
public:
  explicit SampleBuffer(std::size_t num_graphs, std::size_t capacity_per_graph = 5);

  /// Inserts an episode; keeps the top `capacity` by reward (duplicate masks
  /// are collapsed, keeping the better reward). Returns true if retained.
  bool insert(std::size_t graph_index, Episode episode);

  /// Best episodes for a graph (sorted by reward desc), at most `limit`.
  std::vector<Episode> best(std::size_t graph_index, std::size_t limit) const;

  /// Highest reward recorded for a graph (0 if empty).
  double best_reward(std::size_t graph_index) const;

  std::size_t size(std::size_t graph_index) const;
  std::size_t num_graphs() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }

  /// Full contents (per graph, sorted by reward desc) — for checkpointing.
  const std::vector<std::vector<Episode>>& entries() const { return entries_; }

  /// Replaces the buffer contents wholesale (checkpoint restore). The graph
  /// count must match; per-graph lists are re-sorted and trimmed to capacity.
  void restore(std::vector<std::vector<Episode>> entries);

private:
  std::vector<std::vector<Episode>> entries_;  // sorted by reward desc
  std::size_t capacity_;
};

}  // namespace sc::rl
