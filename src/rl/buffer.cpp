#include "rl/buffer.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace sc::rl {

SampleBuffer::SampleBuffer(std::size_t num_graphs, std::size_t capacity_per_graph)
    : entries_(num_graphs), capacity_(capacity_per_graph) {
  SC_CHECK(capacity_per_graph > 0, "buffer capacity must be positive");
}

bool SampleBuffer::insert(std::size_t graph_index, Episode episode) {
  SC_CHECK(graph_index < entries_.size(), "graph index out of range");
  auto& list = entries_[graph_index];

  // Collapse duplicates: identical masks keep the max reward (rewards are
  // deterministic here, but placers may be stochastic across versions).
  for (auto& e : list) {
    if (e.mask == episode.mask) {
      if (episode.reward > e.reward) e = std::move(episode);
      std::stable_sort(list.begin(), list.end(),
                       [](const Episode& a, const Episode& b) { return a.reward > b.reward; });
      return true;
    }
  }

  if (list.size() >= capacity_ && episode.reward <= list.back().reward) {
    return false;  // would be trimmed straight away
  }
  list.push_back(std::move(episode));
  std::stable_sort(list.begin(), list.end(),
                   [](const Episode& a, const Episode& b) { return a.reward > b.reward; });
  if (list.size() > capacity_) list.resize(capacity_);
  return true;
}

std::vector<Episode> SampleBuffer::best(std::size_t graph_index, std::size_t limit) const {
  SC_CHECK(graph_index < entries_.size(), "graph index out of range");
  const auto& list = entries_[graph_index];
  std::vector<Episode> out(list.begin(),
                           list.begin() + static_cast<long>(std::min(limit, list.size())));
  return out;
}

double SampleBuffer::best_reward(std::size_t graph_index) const {
  SC_CHECK(graph_index < entries_.size(), "graph index out of range");
  return entries_[graph_index].empty() ? 0.0 : entries_[graph_index].front().reward;
}

void SampleBuffer::restore(std::vector<std::vector<Episode>> entries) {
  SC_CHECK(entries.size() == entries_.size(),
           "buffer restore has " << entries.size() << " graphs, trainer expects "
                                 << entries_.size());
  entries_ = std::move(entries);
  for (auto& list : entries_) {
    std::stable_sort(list.begin(), list.end(),
                     [](const Episode& a, const Episode& b) { return a.reward > b.reward; });
    if (list.size() > capacity_) list.resize(capacity_);
  }
}

std::size_t SampleBuffer::size(std::size_t graph_index) const {
  SC_CHECK(graph_index < entries_.size(), "graph index out of range");
  return entries_[graph_index].size();
}

}  // namespace sc::rl
