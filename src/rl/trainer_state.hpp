// Crash-safe, resumable trainer-state checkpoints (DESIGN.md §6).
//
// A TrainerState bundles everything that affects the future learning
// trajectory of a ReinforceTrainer:
//
//   - model parameter values (with shapes, for validation on load),
//   - Adam first/second moments and step counter,
//   - the trainer's xoshiro256** RNG stream,
//   - the epoch counter,
//   - the per-graph best-sample buffer.
//
// It deliberately excludes pure memoization state (episode caches, logit
// carries): those reproduce bit-identical values on demand, so a resumed run
// replays the exact learning trajectory of an uninterrupted one.
//
// Serialization is a line-oriented text format with a magic+version header
// ("sctrainer v1") and an explicit end marker. Every double is written as
// its 16-hex-digit IEEE-754 bit pattern (nn::double_to_hex), so round-trips
// are bit-perfect for all values — ±inf, nan, -0.0, denormals, DBL_MAX — and
// save→load→save produces byte-identical files.
//
// Publication is atomic: save_trainer_state writes to "<path>.tmp", flushes,
// verifies the stream, then rename(2)s over the destination. A crash at any
// point leaves either the previous complete checkpoint or a stale .tmp that
// the next save overwrites — readers never observe a partial file under the
// real name. Loads validate the header, every token, and the end marker, and
// reject trailing garbage; no partial state is ever applied.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "nn/adam.hpp"
#include "rl/rollout.hpp"

namespace sc::rl {

struct TrainerState {
  /// Format version this library writes; loads reject anything newer.
  static constexpr std::uint64_t kVersion = 1;

  std::uint64_t epochs_completed = 0;
  std::array<std::uint64_t, 4> rng_state{};

  /// Model parameters, one entry per tensor (shape + flat values).
  std::vector<std::vector<std::size_t>> param_shapes;
  std::vector<std::vector<double>> param_values;

  nn::AdamState adam;

  /// Best-sample buffer contents, per training graph.
  std::size_t buffer_capacity = 0;
  std::vector<std::vector<Episode>> buffer_entries;
};

/// Serializes to the versioned hex-exact text format (see file comment).
void write_trainer_state(std::ostream& os, const TrainerState& state);

/// Parses and validates a checkpoint stream. Throws sc::Error with an
/// actionable message on a bad magic/version, truncation, malformed tokens,
/// internal inconsistency, or trailing garbage — never returns partial state.
TrainerState read_trainer_state(std::istream& is);

/// Atomically publishes `state` at `path` (write "<path>.tmp" + rename).
/// Stream state is checked after flush, so disk-full/permission errors throw
/// instead of leaving a corrupt or empty checkpoint under the real name.
void save_trainer_state(const std::string& path, const TrainerState& state);

TrainerState load_trainer_state(const std::string& path);

}  // namespace sc::rl
