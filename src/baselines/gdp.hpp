// GDP baseline [7]: graph encoder followed by an attention-based placement
// network that predicts all node placements in one shot (a single-head
// scaled dot-product attention stands in for Transformer-XL).
#pragma once

#include "baselines/common.hpp"
#include "gnn/encoder.hpp"

namespace sc::baselines {

struct GdpConfig {
  gnn::EncoderConfig encoder{};
  std::size_t attn_dim = 24;
  std::size_t head_hidden = 32;
  std::size_t max_devices = 32;
  std::uint64_t seed = 23;
};

class Gdp : public DirectPlacementModel {
public:
  Gdp() = default;
  explicit Gdp(const GdpConfig& cfg);

  PlacementResult run(const gnn::GraphFeatures& f, std::size_t num_devices,
                      DecodeMode mode, Rng* rng) const override;

  std::vector<nn::Tensor> parameters() const override;
  std::string name() const override { return "GDP"; }
  std::size_t max_devices() const override { return cfg_.max_devices; }

private:
  GdpConfig cfg_;
  gnn::EdgeAwareEncoder encoder_;
  nn::Linear q_, k_, v_;
  nn::Mlp head_;
};

}  // namespace sc::baselines
