// Shared REINFORCE trainer for the direct-placement baselines, mirroring the
// paper's training protocol (throughput reward, average-reward baseline,
// Adam at lr 1e-3).
#pragma once

#include "baselines/common.hpp"
#include "nn/adam.hpp"
#include "rl/reinforce.hpp"

namespace sc::baselines {

struct DirectTrainerConfig {
  std::size_t samples = 4;  ///< on-policy placements per graph per step
  nn::AdamConfig adam{};
  std::uint64_t seed = 31;
};

class DirectTrainer {
public:
  DirectTrainer(DirectPlacementModel& model, std::vector<rl::GraphContext>& contexts,
                const DirectTrainerConfig& cfg);

  rl::EpochStats train_epoch();

  /// Greedy-decoding rewards over arbitrary contexts.
  static std::vector<double> evaluate(const DirectPlacementModel& model,
                                      const std::vector<rl::GraphContext>& contexts,
                                      ThreadPool* pool = nullptr);

private:
  DirectPlacementModel& model_;
  std::vector<rl::GraphContext>& contexts_;
  DirectTrainerConfig cfg_;
  nn::Adam optimizer_;
  Rng rng_;
};

/// Uses a trained direct-placement model as the partitioning stage of the
/// coarsening framework ("Coarsen+Graph-enc-dec"): the coarse weighted graph
/// is featurised and placed greedily, then expanded to the original graph.
rl::CoarsePlacer learned_placer(const DirectPlacementModel& model);

}  // namespace sc::baselines
