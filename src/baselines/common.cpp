#include "baselines/common.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace sc::baselines {

nn::Tensor mask_device_logits(nn::Tensor logits, std::size_t num_devices) {
  SC_CHECK(logits.dim() == 2, "device logits must be 2-D");
  const std::size_t width = logits.cols();
  SC_CHECK(num_devices >= 1 && num_devices <= width,
           "cluster has " << num_devices << " devices but the model head supports "
                          << width);
  if (num_devices == width) return logits;
  std::vector<double> mask(width, 0.0);
  for (std::size_t d = num_devices; d < width; ++d) mask[d] = -1e9;
  return nn::add(logits, nn::Tensor::from(std::move(mask), {width}));
}

std::vector<int> decode_rows(const nn::Tensor& masked_logits, std::size_t num_devices,
                             DecodeMode mode, Rng* rng) {
  const std::size_t n = masked_logits.rows();
  const std::size_t width = masked_logits.cols();
  std::vector<int> actions(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (mode == DecodeMode::Greedy) {
      int best = 0;
      double best_v = masked_logits.at(i, 0);
      for (std::size_t d = 1; d < num_devices; ++d) {
        if (masked_logits.at(i, d) > best_v) {
          best_v = masked_logits.at(i, d);
          best = static_cast<int>(d);
        }
      }
      actions[i] = best;
    } else {
      SC_CHECK(rng != nullptr, "Sample mode needs an rng");
      // Stable softmax over the valid prefix.
      double mx = masked_logits.at(i, 0);
      for (std::size_t d = 1; d < num_devices; ++d) {
        mx = std::max(mx, masked_logits.at(i, d));
      }
      std::vector<double> w(num_devices);
      for (std::size_t d = 0; d < num_devices; ++d) {
        w[d] = std::exp(masked_logits.at(i, d) - mx);
      }
      actions[i] = static_cast<int>(rng->weighted_index(w));
    }
  }
  (void)width;
  return actions;
}

gnn::GraphFeatures coarse_features(const graph::WeightedGraph& g,
                                   const sim::ClusterSpec& spec) {
  const std::size_t n = g.num_nodes();
  const double rate = spec.source_rate;

  std::vector<double> incident_w(n, 0.0);
  for (const graph::WeightedEdge& e : g.edges()) {
    incident_w[e.a] += e.weight;
    incident_w[e.b] += e.weight;
  }

  std::vector<double> node_vals;
  node_vals.reserve(n * gnn::kNodeFeatureDim);
  for (graph::NodeId v = 0; v < n; ++v) {
    const double cpu_util = rate * g.node_weight(v) / spec.device_mips;
    const double traffic = rate * incident_w[v] / spec.bandwidth;
    node_vals.push_back(cpu_util);
    node_vals.push_back(traffic * 0.5);  // no direction on coarse edges
    node_vals.push_back(traffic * 0.5);
    node_vals.push_back(std::log1p(static_cast<double>(g.degree(v))));
    node_vals.push_back(std::log1p(static_cast<double>(g.degree(v))));
    node_vals.push_back(0.5);  // depth unknown after contraction
  }

  gnn::GraphFeatures f;
  f.node = nn::Tensor::from(std::move(node_vals), {n, gnn::kNodeFeatureDim});

  const std::size_t m = g.num_edges();
  const double total_w = std::max(g.total_edge_weight(), 1e-12);
  std::vector<double> edge_vals;
  edge_vals.reserve(std::max<std::size_t>(1, 2 * m) * gnn::kEdgeFeatureDim);
  for (const graph::WeightedEdge& e : g.edges()) {
    for (int dir = 0; dir < 2; ++dir) {
      f.edge_src.push_back(dir == 0 ? e.a : e.b);
      f.edge_dst.push_back(dir == 0 ? e.b : e.a);
      edge_vals.push_back(rate * e.weight / spec.bandwidth);
      edge_vals.push_back(e.weight / total_w);
      edge_vals.push_back(0.0);
    }
  }
  if (m == 0) edge_vals.assign(gnn::kEdgeFeatureDim, 0.0);
  f.edge = nn::Tensor::from(std::move(edge_vals),
                            {std::max<std::size_t>(1, 2 * m), gnn::kEdgeFeatureDim});
  return f;
}

}  // namespace sc::baselines
