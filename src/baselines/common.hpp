// Shared infrastructure for the learning-based direct-placement baselines
// (Sec. VI-A): Graph-enc-dec [9], GDP [7] and Hierarchical [6].
//
// Every baseline is a DirectPlacementModel: it maps a graph to a device
// placement and reports the log-likelihood of the chosen actions so the
// shared REINFORCE trainer can optimise it.
#pragma once

#include <string>
#include <vector>

#include "gnn/features.hpp"
#include "graph/weighted_graph.hpp"
#include "nn/module.hpp"
#include "rl/rollout.hpp"

namespace sc::baselines {

enum class DecodeMode { Sample, Greedy };

struct PlacementResult {
  sim::Placement placement;
  /// Scalar log-likelihood of all sampled decisions (defined tensor only when
  /// gradients were enabled during the run).
  nn::Tensor log_prob;
};

class DirectPlacementModel : public nn::Module {
public:
  /// Runs the model over a featurised graph. In Sample mode `rng` drives the
  /// stochastic decisions; Greedy mode takes the arg-max everywhere.
  /// The log_prob tensor is recorded iff gradient mode is enabled.
  virtual PlacementResult run(const gnn::GraphFeatures& f, std::size_t num_devices,
                              DecodeMode mode, Rng* rng) const = 0;
  virtual std::string name() const = 0;
  /// Largest device count the model's output head supports.
  virtual std::size_t max_devices() const = 0;
};

/// Adds a large negative constant to logit columns >= num_devices so that
/// sampling and log-likelihoods ignore devices absent from the cluster.
nn::Tensor mask_device_logits(nn::Tensor logits, std::size_t num_devices);

/// Samples (or arg-maxes) one device per row from masked logits.
std::vector<int> decode_rows(const nn::Tensor& masked_logits, std::size_t num_devices,
                             DecodeMode mode, Rng* rng);

/// Builds encoder-compatible features for a coarse (undirected, weighted)
/// graph so a direct-placement model can serve as the partitioning stage of
/// the coarsening framework ("Coarsen+Graph-enc-dec" in Tables I/II).
/// Every undirected edge is expanded into two directed edges.
gnn::GraphFeatures coarse_features(const graph::WeightedGraph& g,
                                   const sim::ClusterSpec& spec);

}  // namespace sc::baselines
