#include "baselines/trainer.hpp"

#include "common/error.hpp"
#include "nn/ops.hpp"

namespace sc::baselines {

DirectTrainer::DirectTrainer(DirectPlacementModel& model,
                             std::vector<rl::GraphContext>& contexts,
                             const DirectTrainerConfig& cfg)
    : model_(model),
      contexts_(contexts),
      cfg_(cfg),
      optimizer_(model.parameters(), cfg.adam),
      rng_(cfg.seed) {
  SC_CHECK(!contexts_.empty(), "trainer needs at least one graph context");
  SC_CHECK(cfg_.samples > 0, "need at least one sample per step");
}

rl::EpochStats DirectTrainer::train_epoch() {
  rl::EpochStats stats;
  ThreadPool& pool = ThreadPool::global();

  std::vector<std::size_t> order(contexts_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng_.shuffle(order);

  for (const std::size_t gi : order) {
    const rl::GraphContext& ctx = contexts_[gi];
    const std::size_t devices = ctx.simulator.spec().num_devices;

    // Sample S placements with gradients recorded (log_prob tensors kept).
    std::vector<PlacementResult> samples;
    samples.reserve(cfg_.samples);
    for (std::size_t s = 0; s < cfg_.samples; ++s) {
      samples.push_back(model_.run(ctx.features, devices, DecodeMode::Sample, &rng_));
    }

    std::vector<double> rewards(samples.size());
    pool.parallel_for(samples.size(), [&](std::size_t s) {
      rewards[s] = ctx.simulator.relative_throughput(samples[s].placement);
    });

    // Self-critical baseline (SCST): the greedy decode's reward. Much lower
    // variance than the mean-of-samples baseline for sequential decoders —
    // only samples that beat the current deterministic policy are reinforced.
    double greedy_reward;
    {
      nn::NoGradGuard no_grad;
      const auto greedy = model_.run(ctx.features, devices, DecodeMode::Greedy, nullptr);
      greedy_reward = ctx.simulator.relative_throughput(greedy.placement);
    }

    double mean_reward = 0.0;
    for (const double r : rewards) mean_reward += r;
    mean_reward /= static_cast<double>(rewards.size());
    stats.mean_sample_reward += mean_reward;
    const double baseline = greedy_reward;

    nn::Tensor loss = nn::Tensor::scalar(0.0);
    for (std::size_t s = 0; s < samples.size(); ++s) {
      const double advantage = rewards[s] - baseline;
      if (std::abs(advantage) < 1e-12) continue;
      loss = nn::add(loss, nn::scale(samples[s].log_prob, -advantage));
    }
    loss = nn::scale(loss, 1.0 / static_cast<double>(samples.size()));
    stats.mean_loss += loss.item();
    loss.backward();
    optimizer_.step();
  }

  const double n = static_cast<double>(contexts_.size());
  stats.mean_sample_reward /= n;
  stats.mean_loss /= n;

  const auto greedy = evaluate(model_, contexts_, &pool);
  double sum = 0.0;
  for (const double r : greedy) sum += r;
  stats.mean_greedy_reward = sum / n;
  stats.mean_best_reward = stats.mean_greedy_reward;
  return stats;
}

std::vector<double> DirectTrainer::evaluate(const DirectPlacementModel& model,
                                            const std::vector<rl::GraphContext>& contexts,
                                            ThreadPool* pool) {
  std::vector<double> rewards(contexts.size(), 0.0);
  const auto eval_one = [&](std::size_t i) {
    nn::NoGradGuard no_grad;
    const auto result =
        model.run(contexts[i].features, contexts[i].simulator.spec().num_devices,
                  DecodeMode::Greedy, nullptr);
    rewards[i] = contexts[i].simulator.relative_throughput(result.placement);
  };
  if (pool != nullptr) {
    pool->parallel_for(contexts.size(), eval_one);
  } else {
    for (std::size_t i = 0; i < contexts.size(); ++i) eval_one(i);
  }
  return rewards;
}

rl::CoarsePlacer learned_placer(const DirectPlacementModel& model) {
  return [&model](const graph::Coarsening& c, const sim::FluidSimulator& simulator) {
    nn::NoGradGuard no_grad;
    const gnn::GraphFeatures f = coarse_features(c.coarse, simulator.spec());
    const auto result =
        model.run(f, simulator.spec().num_devices, DecodeMode::Greedy, nullptr);
    return c.expand_placement(result.placement);
  };
}

}  // namespace sc::baselines
