// Hierarchical baseline [6]: a Grouper assigns every node to one of G
// pre-defined groups, then a Placer (LSTM over groups) assigns each group to
// a device. This is the general-purpose node-clustering coarsening
// formulation the paper argues does not fit stream graphs (Sec. IV).
#pragma once

#include "baselines/common.hpp"
#include "nn/module.hpp"

namespace sc::baselines {

struct HierarchicalConfig {
  std::size_t num_groups = 25;  ///< paper: 25 groups works best
  std::size_t grouper_hidden = 32;
  std::size_t lstm_hidden = 32;
  std::size_t device_embed = 8;
  std::size_t max_devices = 32;
  std::uint64_t seed = 29;
};

class Hierarchical : public DirectPlacementModel {
public:
  Hierarchical() = default;
  explicit Hierarchical(const HierarchicalConfig& cfg);

  PlacementResult run(const gnn::GraphFeatures& f, std::size_t num_devices,
                      DecodeMode mode, Rng* rng) const override;

  std::vector<nn::Tensor> parameters() const override;
  std::string name() const override { return "Hierarchical"; }
  std::size_t max_devices() const override { return cfg_.max_devices; }

  const HierarchicalConfig& config() const { return cfg_; }

private:
  HierarchicalConfig cfg_;
  nn::Mlp grouper_;       // node features -> group logits
  nn::Linear group_proj_; // pooled group features -> lstm input part
  nn::LstmCell placer_;
  nn::Embedding device_embed_;
  nn::Linear out_;
  nn::Linear load_proj_;  // shared 1 -> 1 allocation-state feedback
};

}  // namespace sc::baselines
