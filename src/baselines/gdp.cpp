#include "baselines/gdp.hpp"

#include <cmath>

#include "common/error.hpp"

namespace sc::baselines {

using nn::Tensor;

Gdp::Gdp(const GdpConfig& cfg) : cfg_(cfg) {
  Rng rng(cfg.seed);
  encoder_ = gnn::EdgeAwareEncoder(cfg.encoder, rng);
  const std::size_t d = encoder_.output_dim();
  q_ = nn::Linear(d, cfg.attn_dim, rng, /*bias=*/false);
  k_ = nn::Linear(d, cfg.attn_dim, rng, /*bias=*/false);
  v_ = nn::Linear(d, cfg.attn_dim, rng, /*bias=*/false);
  head_ = nn::Mlp({d + cfg.attn_dim, cfg.head_hidden, cfg.max_devices}, rng);
}

PlacementResult Gdp::run(const gnn::GraphFeatures& f, std::size_t num_devices,
                         DecodeMode mode, Rng* rng) const {
  SC_CHECK(cfg_.max_devices > 0, "model used before initialisation");
  SC_CHECK(num_devices <= cfg_.max_devices, "cluster exceeds the model's device head");

  const Tensor h = encoder_.forward(f);  // (n, 2m)

  // Global single-head attention gives every node a whole-graph context.
  const Tensor q = q_.forward(h);
  const Tensor k = k_.forward(h);
  const Tensor v = v_.forward(h);
  const double scaling = 1.0 / std::sqrt(static_cast<double>(cfg_.attn_dim));
  const Tensor scores = nn::scale(nn::matmul_nt(q, k), scaling);  // (n, n)
  const Tensor context = nn::matmul(nn::softmax_rows(scores), v); // (n, attn)

  const Tensor logits =
      mask_device_logits(head_.forward(nn::concat_cols({h, context})), num_devices);

  PlacementResult result;
  result.placement = decode_rows(logits, num_devices, mode, rng);
  result.log_prob = nn::sum(nn::categorical_log_prob(logits, result.placement));
  return result;
}

std::vector<Tensor> Gdp::parameters() const {
  return nn::params_of({&encoder_, &q_, &k_, &v_, &head_});
}

}  // namespace sc::baselines
