#include "baselines/hierarchical.hpp"

#include "common/error.hpp"

namespace sc::baselines {

using nn::Tensor;

Hierarchical::Hierarchical(const HierarchicalConfig& cfg) : cfg_(cfg) {
  Rng rng(cfg.seed);
  grouper_ = nn::Mlp({gnn::kNodeFeatureDim, cfg.grouper_hidden, cfg.num_groups}, rng);
  // Pooled group feature = mean node features of members (zero if empty).
  group_proj_ = nn::Linear(gnn::kNodeFeatureDim, cfg.lstm_hidden, rng);
  placer_ = nn::LstmCell(cfg.lstm_hidden + cfg.device_embed, cfg.lstm_hidden, rng);
  device_embed_ = nn::Embedding(cfg.max_devices + 1, cfg.device_embed, rng);
  out_ = nn::Linear(cfg.lstm_hidden, cfg.max_devices, rng);
  load_proj_ = nn::Linear(1, 1, rng, /*bias=*/false);
  load_proj_.parameters()[0].value()[0] = -2.0;
}

PlacementResult Hierarchical::run(const gnn::GraphFeatures& f, std::size_t num_devices,
                                  DecodeMode mode, Rng* rng) const {
  SC_CHECK(cfg_.num_groups > 0, "model used before initialisation");
  SC_CHECK(num_devices <= cfg_.max_devices, "cluster exceeds the model's device head");

  const std::size_t n = f.node.rows();

  // ---- Grouper: per-node categorical over G groups -------------------------
  const Tensor group_logits = grouper_.forward(f.node);  // (n, G)
  std::vector<int> groups(n, 0);
  if (mode == DecodeMode::Greedy) {
    for (std::size_t i = 0; i < n; ++i) {
      int best = 0;
      for (std::size_t g = 1; g < cfg_.num_groups; ++g) {
        if (group_logits.at(i, g) > group_logits.at(i, best)) best = static_cast<int>(g);
      }
      groups[i] = best;
    }
  } else {
    SC_CHECK(rng != nullptr, "Sample mode needs an rng");
    for (std::size_t i = 0; i < n; ++i) {
      double mx = group_logits.at(i, 0);
      for (std::size_t g = 1; g < cfg_.num_groups; ++g) {
        mx = std::max(mx, group_logits.at(i, g));
      }
      std::vector<double> w(cfg_.num_groups);
      for (std::size_t g = 0; g < cfg_.num_groups; ++g) {
        w[g] = std::exp(group_logits.at(i, g) - mx);
      }
      groups[i] = static_cast<int>(rng->weighted_index(w));
    }
  }
  Tensor log_prob = nn::sum(nn::categorical_log_prob(group_logits, groups));

  // ---- Pool member features per group (forward-only statistics) ------------
  std::vector<std::size_t> member_of(n);
  for (std::size_t i = 0; i < n; ++i) member_of[i] = static_cast<std::size_t>(groups[i]);
  const Tensor pooled = nn::scatter_mean(f.node, member_of, cfg_.num_groups);  // (G, F)
  const Tensor group_in = nn::tanh_op(group_proj_.forward(pooled));            // (G, H)

  // ---- Placer: LSTM over groups ---------------------------------------------
  // Total CPU utilization per group (mean member cpu * member count).
  std::vector<double> group_cpu(cfg_.num_groups, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    group_cpu[member_of[i]] += f.node.at(i, 0);
  }

  std::vector<int> group_device(cfg_.num_groups, 0);
  std::vector<double> device_load(cfg_.max_devices, 0.0);
  nn::LstmCell::State state = placer_.initial_state();
  std::size_t prev_token = cfg_.max_devices;
  for (std::size_t g = 0; g < cfg_.num_groups; ++g) {
    const Tensor gi = nn::gather_rows(group_in, {g});
    const Tensor prev = device_embed_.forward({prev_token});
    state = placer_.forward(nn::concat_cols({gi, prev}), state);
    const Tensor load_col =
        Tensor::from(std::vector<double>(device_load), {cfg_.max_devices, 1});
    const Tensor load_term =
        nn::reshape(load_proj_.forward(load_col), {1, cfg_.max_devices});
    const Tensor logits = mask_device_logits(
        nn::add(out_.forward(state.h), load_term), num_devices);
    const std::vector<int> action = decode_rows(logits, num_devices, mode, rng);
    group_device[g] = action[0];
    prev_token = static_cast<std::size_t>(action[0]);
    device_load[prev_token] += group_cpu[g];
    log_prob = nn::add(log_prob, nn::sum(nn::categorical_log_prob(logits, action)));
  }

  PlacementResult result;
  result.placement.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    result.placement[i] = group_device[static_cast<std::size_t>(groups[i])];
  }
  result.log_prob = log_prob;
  return result;
}

std::vector<Tensor> Hierarchical::parameters() const {
  return nn::params_of(
      {&grouper_, &group_proj_, &placer_, &device_embed_, &out_, &load_proj_});
}

}  // namespace sc::baselines
