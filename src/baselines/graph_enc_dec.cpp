#include "baselines/graph_enc_dec.hpp"

#include "common/error.hpp"

namespace sc::baselines {

using nn::Tensor;

GraphEncDec::GraphEncDec(const GraphEncDecConfig& cfg) : cfg_(cfg) {
  Rng rng(cfg.seed);
  encoder_ = gnn::EdgeAwareEncoder(cfg.encoder, rng);
  lstm_ = nn::LstmCell(encoder_.output_dim() + cfg.device_embed, cfg.lstm_hidden, rng);
  device_embed_ = nn::Embedding(cfg.max_devices + 1, cfg.device_embed, rng);
  out_ = nn::Linear(cfg.lstm_hidden, cfg.max_devices, rng);
  load_proj_ = nn::Linear(1, 1, rng, /*bias=*/false);
  // Start with a repulsive prior toward loaded devices; RL refines the scale.
  load_proj_.parameters()[0].value()[0] = -2.0;
}

PlacementResult GraphEncDec::run(const gnn::GraphFeatures& f, std::size_t num_devices,
                                 DecodeMode mode, Rng* rng) const {
  SC_CHECK(cfg_.max_devices > 0, "model used before initialisation");
  SC_CHECK(num_devices <= cfg_.max_devices,
           "cluster exceeds the model's device head (" << cfg_.max_devices << ")");

  const Tensor h = encoder_.forward(f);  // (n, 2m)
  const std::size_t n = h.rows();

  PlacementResult result;
  result.placement.resize(n);
  Tensor log_prob_sum = Tensor::scalar(0.0);

  nn::LstmCell::State state = lstm_.initial_state();
  std::size_t prev_token = cfg_.max_devices;  // start token
  std::vector<double> device_load(cfg_.max_devices, 0.0);  // CPU-util units
  for (std::size_t v = 0; v < n; ++v) {
    const Tensor node_h = nn::gather_rows(h, {v});              // (1, 2m)
    const Tensor prev = device_embed_.forward({prev_token});    // (1, de)
    state = lstm_.forward(nn::concat_cols({node_h, prev}), state);

    // Allocation-state path: each device's accumulated load maps through a
    // shared scalar and adds to its logit.
    const Tensor load_col =
        Tensor::from(std::vector<double>(device_load), {cfg_.max_devices, 1});
    const Tensor load_term =
        nn::reshape(load_proj_.forward(load_col), {1, cfg_.max_devices});
    const Tensor logits = mask_device_logits(
        nn::add(out_.forward(state.h), load_term), num_devices);

    const std::vector<int> action = decode_rows(logits, num_devices, mode, rng);
    result.placement[v] = action[0];
    prev_token = static_cast<std::size_t>(action[0]);
    device_load[prev_token] += f.node.at(v, 0);  // feature 0 = CPU utilization
    log_prob_sum =
        nn::add(log_prob_sum, nn::sum(nn::categorical_log_prob(logits, action)));
  }
  result.log_prob = log_prob_sum;
  return result;
}

std::vector<Tensor> GraphEncDec::parameters() const {
  return nn::params_of({&encoder_, &lstm_, &device_embed_, &out_, &load_proj_});
}

}  // namespace sc::baselines
