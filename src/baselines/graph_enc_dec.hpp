// Graph-enc-dec baseline [9]: edge-aware graph encoder + LSTM decoder that
// assigns nodes to devices sequentially, feeding back the previous decision
// through a device embedding. This is the state-of-the-art direct-placement
// model the paper compares against (and uses as an optional partitioning
// stage on coarsened graphs).
#pragma once

#include "baselines/common.hpp"
#include "gnn/encoder.hpp"

namespace sc::baselines {

struct GraphEncDecConfig {
  gnn::EncoderConfig encoder{};
  std::size_t lstm_hidden = 32;
  std::size_t device_embed = 8;
  std::size_t max_devices = 32;
  std::uint64_t seed = 21;
};

class GraphEncDec : public DirectPlacementModel {
public:
  GraphEncDec() = default;
  explicit GraphEncDec(const GraphEncDecConfig& cfg);

  PlacementResult run(const gnn::GraphFeatures& f, std::size_t num_devices,
                      DecodeMode mode, Rng* rng) const override;

  std::vector<nn::Tensor> parameters() const override;
  std::string name() const override { return "Graph-enc-dec"; }
  std::size_t max_devices() const override { return cfg_.max_devices; }

  const GraphEncDecConfig& config() const { return cfg_; }

private:
  GraphEncDecConfig cfg_;
  gnn::EdgeAwareEncoder encoder_;
  nn::LstmCell lstm_;
  nn::Embedding device_embed_;  // max_devices + 1 rows (last = start token)
  nn::Linear out_;
  // Allocation-state feedback ([9]'s decoder conditions on the placement so
  // far): the accumulated CPU load of each device passes through a shared
  // scalar map and adds to that device's logit.
  nn::Linear load_proj_;  // 1 -> 1, shared across devices
};

}  // namespace sc::baselines
