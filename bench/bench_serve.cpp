// bench_serve — serving-tier load harness (BENCH_serve.json).
//
// Drives the AllocationService (src/serve) in-process with an open-loop
// arrival schedule over a mixed-Setting request pool, A/Bing cross-request
// batched inference against unbatched serving:
//
//   identity : every pool graph is allocated once in each mode and the
//              placements are asserted bit-identical BEFORE any timing
//              (batching shares GEMM work; it must never change results).
//   load     : requests arrive open-loop at a fixed rate (default: 2x the
//              measured unbatched closed-loop capacity, i.e. deliberate
//              overload so the bounded queue and shedding are exercised),
//              per-request latency is measured from the scheduled arrival
//              time (coordinated-omission-free) into a LatencyHistogram,
//              and each mode reports sustained QPS + p50/p95/p99.
//   rounds   : batched/unbatched rounds interleave and each mode keeps its
//              best-QPS round, so host load spikes hit both arms alike.
//
// The default placer is coarsen-only (Table II variant): it keeps the
// non-forward share of a request cheap, so the A/B isolates what this bench
// is about — the encoder forward amortization. --placer metis measures the
// full pipeline instead.
//
// Usage:
//   bench_serve [--tiny] [--out BENCH_serve.json] [--seed N] [--requests N]
//               [--rate RPS] [--workers N] [--queue-depth N] [--max-batch N]
//               [--window-us N] [--best-of K] [--rounds N]
//               [--placer coarsen-only|metis] [--threads N] [--verbose]
//   bench_serve --validate <file>   # re-parse an emitted JSON (ctest smoke)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <thread>

#include "bench_common.hpp"
#include "common/latency_histogram.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "nn/simd.hpp"
#include "serve/service.hpp"

namespace {

using Clock = std::chrono::steady_clock;

// ---------------------------------------------------------------------------
// Minimal JSON validation (recursive descent), mirroring bench_perf_reward.
// ---------------------------------------------------------------------------
struct JsonParser {
  const std::string& s;
  std::size_t pos = 0;

  explicit JsonParser(const std::string& text) : s(text) {}

  [[noreturn]] void fail(const std::string& what) const {
    throw sc::Error("JSON parse error at byte " + std::to_string(pos) + ": " + what);
  }
  void skip_ws() {
    while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                              s[pos] == '\r')) {
      ++pos;
    }
  }
  char peek() {
    skip_ws();
    if (pos >= s.size()) fail("unexpected end of input");
    return s[pos];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos;
  }
  void parse_string() {
    expect('"');
    while (pos < s.size() && s[pos] != '"') {
      if (s[pos] == '\\') ++pos;  // skip escaped char
      ++pos;
    }
    if (pos >= s.size()) fail("unterminated string");
    ++pos;
  }
  double parse_number() {
    skip_ws();
    const std::size_t start = pos;
    if (pos < s.size() && (s[pos] == '-' || s[pos] == '+')) ++pos;
    while (pos < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[pos])) || s[pos] == '.' ||
            s[pos] == 'e' || s[pos] == 'E' || s[pos] == '-' || s[pos] == '+')) {
      ++pos;
    }
    if (pos == start) fail("expected a number");
    const double v = std::strtod(s.substr(start, pos - start).c_str(), nullptr);
    if (!std::isfinite(v)) fail("non-finite number");
    return v;
  }
  void parse_literal(const char* lit) {
    skip_ws();
    for (const char* p = lit; *p; ++p, ++pos) {
      if (pos >= s.size() || s[pos] != *p) fail(std::string("expected '") + lit + "'");
    }
  }
  void parse_value() {
    const char c = peek();
    if (c == '{') {
      parse_object();
    } else if (c == '[') {
      expect('[');
      if (peek() != ']') {
        parse_value();
        while (peek() == ',') {
          ++pos;
          parse_value();
        }
      }
      expect(']');
    } else if (c == '"') {
      parse_string();
    } else if (c == 't') {
      parse_literal("true");
    } else if (c == 'f') {
      parse_literal("false");
    } else if (c == 'n') {
      parse_literal("null");
    } else {
      (void)parse_number();
    }
  }
  std::vector<std::string> parse_object() {
    std::vector<std::string> keys;
    expect('{');
    if (peek() != '}') {
      for (;;) {
        skip_ws();
        const std::size_t key_start = pos + 1;
        parse_string();
        keys.push_back(s.substr(key_start, pos - key_start - 1));
        expect(':');
        parse_value();
        if (peek() != ',') break;
        ++pos;
      }
    }
    expect('}');
    return keys;
  }
};

int validate_json(const std::string& path) {
  std::ifstream is(path);
  if (!is.good()) {
    std::cerr << "bench_serve: cannot open '" << path << "'\n";
    return 1;
  }
  std::stringstream buf;
  buf << is.rdbuf();
  const std::string text = buf.str();
  try {
    JsonParser parser(text);
    const auto keys = parser.parse_object();
    parser.skip_ws();
    if (parser.pos != text.size()) parser.fail("trailing garbage after object");
    for (const char* required : {"schema_version", "requests", "rate_rps", "identical",
                                 "speedup_qps", "p99_ratio", "batched", "unbatched",
                                 "env"}) {
      bool found = false;
      for (const auto& k : keys) found = found || k == required;
      if (!found) throw sc::Error(std::string("missing required key '") + required + "'");
    }
  } catch (const std::exception& e) {
    std::cerr << "bench_serve: '" << path << "' is malformed: " << e.what() << '\n';
    return 1;
  }
  std::cout << "OK: " << path << " is well-formed JSON with the expected keys\n";
  return 0;
}

// ---------------------------------------------------------------------------
// Request pool: a mixed-Setting job population. Mostly Small (the serving
// sweet spot where concurrent graphs share GEMM work), with MediumSmallCluster
// and Medium jobs mixed in so batches are heterogeneous in size and spec.
// ---------------------------------------------------------------------------
struct PoolEntry {
  sc::graph::StreamGraph graph;
  sc::sim::ClusterSpec spec;
};

struct Pool {
  std::vector<PoolEntry> entries;
  std::size_t n_small = 0, n_medium5 = 0, n_medium = 0;
};

Pool make_pool(bool tiny, std::uint64_t seed) {
  using namespace sc;
  Pool pool;
  const auto add = [&](gen::Setting s, std::size_t count) {
    const gen::GeneratorConfig cfg = gen::setting_config(s);
    auto graphs = gen::generate_graphs(cfg, count, seed + static_cast<std::uint64_t>(s) * 7919);
    const sim::ClusterSpec spec = rl::to_cluster_spec(cfg.workload);
    for (auto& g : graphs) pool.entries.push_back({std::move(g), spec});
    return count;
  };
  pool.n_small = add(gen::Setting::Small, tiny ? 6 : 12);
  if (!tiny) {
    pool.n_medium5 = add(gen::Setting::MediumSmallCluster, 4);
    pool.n_medium = add(gen::Setting::Medium, 2);
  }
  return pool;
}

sc::serve::ServeConfig make_config(const sc::Flags& flags, const Pool& pool, bool tiny,
                                   bool batched) {
  sc::serve::ServeConfig cfg;
  cfg.workers = static_cast<std::size_t>(flags.get_int("workers", 1));
  cfg.queue_depth = static_cast<std::size_t>(flags.get_int("queue-depth", 256));
  cfg.max_batch = static_cast<std::size_t>(flags.get_int("max-batch", tiny ? 8 : 16));
  cfg.batch_window_us = static_cast<std::size_t>(flags.get_int("window-us", 200));
  cfg.batched = batched;
  cfg.context_cache_capacity = pool.entries.size() + 8;
  return cfg;
}

sc::rl::CoarsePlacer make_placer(const std::string& name) {
  if (name == "metis") return sc::rl::metis_placer();
  SC_CHECK(name == "coarsen-only",
           "unknown --placer '" << name << "' (coarsen-only|metis)");
  return sc::rl::coarsen_only_placer();
}

sc::serve::AllocRequest make_request(const Pool& pool, std::size_t pool_idx,
                                     std::uint64_t id, std::size_t best_of) {
  sc::serve::AllocRequest req;
  const PoolEntry& e = pool.entries[pool_idx % pool.entries.size()];
  req.id = id;
  req.graph = e.graph;  // the copy is the client's cost, outside the service
  req.spec = e.spec;
  req.best_of = best_of;
  req.seed = 0x5EED0000ULL + pool_idx;  // same graph => same samples
  return req;
}

/// Popularity-skewed arrival stream (80% of traffic on a 4-job hot set, the
/// rest uniform over the whole pool) — the standard serving-workload shape.
/// Precomputed once and replayed identically by the capacity probe and every
/// round of both modes, so the A/B compares the exact same request sequence.
std::vector<std::size_t> make_arrivals(std::size_t requests, const Pool& pool,
                                       std::uint64_t seed) {
  sc::Rng rng(seed ^ 0xA11CA7EDULL);
  const std::size_t hot = std::min<std::size_t>(4, pool.entries.size());
  std::vector<std::size_t> idx(requests);
  for (auto& v : idx) {
    v = rng.bernoulli(0.8) ? rng.index(hot) : rng.index(pool.entries.size());
  }
  return idx;
}

// ---------------------------------------------------------------------------
// Identity phase: per-request placements must be bit-identical between the
// batched and unbatched modes (PR 2's block-diagonal invariant end to end).
// ---------------------------------------------------------------------------
std::vector<sc::sim::Placement> placements_in_mode(const sc::gnn::CoarseningPolicy& policy,
                                                   const sc::rl::CoarsePlacer& placer,
                                                   const sc::Flags& flags, const Pool& pool,
                                                   bool tiny, bool batched,
                                                   std::size_t best_of) {
  using namespace sc;
  serve::AllocationService service(policy, placer, make_config(flags, pool, tiny, batched));
  std::vector<sim::Placement> placements(pool.entries.size());
  std::mutex m;
  for (std::size_t i = 0; i < pool.entries.size(); ++i) {
    const bool ok = service.submit(make_request(pool, i, i, best_of), [&, i](serve::AllocResponse res) {
      SC_CHECK(res.status == serve::ResponseStatus::Ok,
               "identity request " << i << " failed: " << res.error);
      std::lock_guard<std::mutex> lock(m);
      placements[i] = std::move(res.placement);
    });
    SC_CHECK(ok, "identity phase must not shed (queue depth >= pool size)");
  }
  service.drain();
  service.stop();
  return placements;
}

// ---------------------------------------------------------------------------
// Load phase: open-loop arrivals at `rate` rps. Latency is measured from the
// *scheduled* arrival time, so generator lag counts against the server
// (no coordinated omission).
// ---------------------------------------------------------------------------
struct ModeResult {
  double qps = 0.0;
  double p50_us = 0.0, p95_us = 0.0, p99_us = 0.0, mean_us = 0.0;
  std::uint64_t completed = 0, shed = 0, errors = 0;
  std::uint64_t batches = 0;
  double mean_batch = 0.0;
  std::uint64_t dedup_shared = 0;
  std::uint64_t tail_hits = 0, tail_misses = 0;
};

ModeResult run_load(const sc::gnn::CoarseningPolicy& policy,
                    const sc::rl::CoarsePlacer& placer, const sc::Flags& flags,
                    const Pool& pool, bool tiny, bool batched,
                    const std::vector<std::size_t>& arrivals, double rate,
                    std::size_t best_of) {
  using namespace sc;
  serve::AllocationService service(policy, placer, make_config(flags, pool, tiny, batched));

  // Warm the context cache so the measured window reflects steady-state
  // serving (both modes warm identically).
  for (std::size_t i = 0; i < pool.entries.size(); ++i) {
    SC_CHECK(service.submit(make_request(pool, i, i, 0), {}), "warmup shed");
  }
  service.drain();

  common::LatencyHistogram hist;
  const auto t0 = Clock::now();
  const double ns_per_req = 1e9 / rate;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const auto scheduled =
        t0 + std::chrono::nanoseconds(static_cast<std::int64_t>(ns_per_req * static_cast<double>(i)));
    std::this_thread::sleep_until(scheduled);
    serve::AllocRequest req = make_request(pool, arrivals[i], i, best_of);
    req.submit_time = scheduled;
    (void)service.submit(std::move(req), [&hist](serve::AllocResponse res) {
      if (res.status == serve::ResponseStatus::Ok) {
        hist.record_seconds(res.latency_seconds);
      }
    });  // false => shed, counted by the service
  }
  service.drain();
  const double elapsed = std::chrono::duration<double>(Clock::now() - t0).count();
  const serve::ServeStats stats = service.stats();
  service.stop();

  ModeResult r;
  // Warmup responses carry no histogram entries; exclude them from QPS too.
  r.completed = hist.count();
  r.shed = stats.shed;
  r.errors = stats.errors;
  r.batches = stats.batches;
  r.mean_batch = stats.batches > 0 ? static_cast<double>(stats.batched_requests) /
                                         static_cast<double>(stats.batches)
                                   : 0.0;
  r.dedup_shared = stats.dedup_shared;
  r.tail_hits = stats.context_cache.tail_hits;
  r.tail_misses = stats.context_cache.tail_misses;
  r.qps = elapsed > 0 ? static_cast<double>(r.completed) / elapsed : 0.0;
  r.p50_us = static_cast<double>(hist.percentile_nanos(0.50)) / 1e3;
  r.p95_us = static_cast<double>(hist.percentile_nanos(0.95)) / 1e3;
  r.p99_us = static_cast<double>(hist.percentile_nanos(0.99)) / 1e3;
  r.mean_us = hist.mean_nanos() / 1e3;
  SC_CHECK(r.errors == 0, "load phase produced " << r.errors << " request errors");
  return r;
}

/// Closed-loop unbatched capacity probe: one in-flight request at a time,
/// replaying a prefix of the same arrival stream the load phases use.
double unbatched_capacity(const sc::gnn::CoarseningPolicy& policy,
                          const sc::rl::CoarsePlacer& placer, const sc::Flags& flags,
                          const Pool& pool, bool tiny,
                          const std::vector<std::size_t>& arrivals, std::size_t best_of) {
  using namespace sc;
  serve::AllocationService service(policy, placer, make_config(flags, pool, tiny, false));
  for (std::size_t i = 0; i < pool.entries.size(); ++i) {
    SC_CHECK(service.submit(make_request(pool, i, i, 0), {}), "warmup shed");
    service.drain();
  }
  const std::size_t probes =
      std::min(arrivals.size(), pool.entries.size() * (tiny ? 2 : 4));
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < probes; ++i) {
    SC_CHECK(service.submit(make_request(pool, arrivals[i], i, best_of), {}),
             "probe shed");
    service.drain();
  }
  const double elapsed = std::chrono::duration<double>(Clock::now() - t0).count();
  service.stop();
  return static_cast<double>(probes) / elapsed;
}

std::string json_num(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream os;
  os << std::setprecision(12) << v;
  return os.str();
}

void mode_json(std::ostream& os, const char* name, const ModeResult& r, bool last) {
  os << "  \"" << name << "\": {\n"
     << "    \"qps\": " << json_num(r.qps) << ",\n"
     << "    \"p50_us\": " << json_num(r.p50_us) << ",\n"
     << "    \"p95_us\": " << json_num(r.p95_us) << ",\n"
     << "    \"p99_us\": " << json_num(r.p99_us) << ",\n"
     << "    \"mean_us\": " << json_num(r.mean_us) << ",\n"
     << "    \"completed\": " << r.completed << ",\n"
     << "    \"shed\": " << r.shed << ",\n"
     << "    \"batches\": " << r.batches << ",\n"
     << "    \"mean_batch\": " << json_num(r.mean_batch) << ",\n"
     << "    \"dedup_shared\": " << r.dedup_shared << ",\n"
     << "    \"tail_hits\": " << r.tail_hits << ",\n"
     << "    \"tail_misses\": " << r.tail_misses << "\n  }" << (last ? "\n" : ",\n");
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace sc;
  const Flags raw(argc, argv);
  if (raw.has("validate")) return validate_json(raw.get_string("validate", ""));

  const auto args = bench::BenchArgs::parse(argc, argv);
  const bool tiny = raw.get_bool("tiny", false);
  const std::string out = raw.get_string("out", "BENCH_serve.json");
  const auto requests = static_cast<std::size_t>(raw.get_int("requests", tiny ? 300 : 3000));
  const auto best_of = static_cast<std::size_t>(raw.get_int("best-of", 0));
  const auto rounds = static_cast<std::size_t>(raw.get_int("rounds", tiny ? 1 : 3));
  const std::string placer_name = raw.get_string("placer", "coarsen-only");
  std::cout << "[serve] Serving-tier load harness" << (tiny ? " (tiny)" : "") << "\n";

  const Pool pool = make_pool(tiny, args.seed);
  std::size_t total_nodes = 0;
  for (const auto& e : pool.entries) total_nodes += e.graph.num_nodes();
  std::cout << "  pool    " << pool.entries.size() << " graphs (" << pool.n_small
            << " small, " << pool.n_medium5 << " medium5, " << pool.n_medium
            << " medium), " << total_nodes << " nodes total\n";

  // One policy for every phase: random weights are fine (the bench measures
  // the serving architecture, not model quality) and deterministic in --seed.
  gnn::PolicyConfig pcfg;
  pcfg.seed = args.seed;
  const gnn::CoarseningPolicy policy(pcfg);
  const rl::CoarsePlacer placer = make_placer(placer_name);

  // Identity before any timing.
  const auto batched_p = placements_in_mode(policy, placer, raw, pool, tiny, true, best_of);
  const auto unbatched_p = placements_in_mode(policy, placer, raw, pool, tiny, false, best_of);
  const bool identical = batched_p == unbatched_p;
  SC_CHECK(identical, "batched and unbatched serving produced different placements");
  std::cout << "  identity  " << pool.entries.size()
            << " placements bit-identical across modes\n";

  // One arrival stream shared by the capacity probe and every round of both
  // modes: the A/B replays the exact same skewed request sequence.
  const std::vector<std::size_t> arrivals = make_arrivals(requests, pool, args.seed);

  // Arrival rate: default 2x the unbatched closed-loop capacity (overload).
  double rate = raw.get_double("rate", 0.0);
  const bool auto_rate = rate <= 0.0;
  if (auto_rate) {
    const double cap = unbatched_capacity(policy, placer, raw, pool, tiny, arrivals, best_of);
    rate = 2.0 * cap;
    std::cout << "  capacity  " << metrics::Table::fmt(cap, 0)
              << " rps unbatched closed-loop; driving at " << metrics::Table::fmt(rate, 0)
              << " rps\n";
  }

  // Interleaved rounds, best QPS per mode.
  ModeResult best_batched, best_unbatched;
  for (std::size_t round = 0; round < rounds; ++round) {
    const ModeResult b =
        run_load(policy, placer, raw, pool, tiny, true, arrivals, rate, best_of);
    if (b.qps > best_batched.qps) best_batched = b;
    const ModeResult u =
        run_load(policy, placer, raw, pool, tiny, false, arrivals, rate, best_of);
    if (u.qps > best_unbatched.qps) best_unbatched = u;
  }

  const double speedup = best_unbatched.qps > 0 ? best_batched.qps / best_unbatched.qps : 0.0;
  const double p99_ratio =
      best_unbatched.p99_us > 0 ? best_batched.p99_us / best_unbatched.p99_us : 0.0;
  std::cout << "  batched   " << metrics::Table::fmt(best_batched.qps, 0) << " qps, p50 "
            << metrics::Table::fmt(best_batched.p50_us, 0) << " us, p99 "
            << metrics::Table::fmt(best_batched.p99_us, 0) << " us, mean batch "
            << metrics::Table::fmt(best_batched.mean_batch, 2) << ", dedup "
            << best_batched.dedup_shared << ", tail hits " << best_batched.tail_hits
            << ", shed " << best_batched.shed << "\n";
  std::cout << "  unbatched " << metrics::Table::fmt(best_unbatched.qps, 0) << " qps, p50 "
            << metrics::Table::fmt(best_unbatched.p50_us, 0) << " us, p99 "
            << metrics::Table::fmt(best_unbatched.p99_us, 0) << " us, shed "
            << best_unbatched.shed << "\n";
  std::cout << "  speedup   " << metrics::Table::fmt(speedup, 2) << "x QPS, p99 ratio "
            << metrics::Table::fmt(p99_ratio, 2) << " (<= 1 is equal-or-better)\n";

  std::ofstream os(out);
  SC_CHECK(os.good(), "cannot open output file '" << out << "'");
  os << "{\n"
     << "  \"schema_version\": 1,\n"
     << "  \"tiny\": " << (tiny ? "true" : "false") << ",\n"
     << "  \"seed\": " << args.seed << ",\n"
     << "  \"requests\": " << requests << ",\n"
     << "  \"rounds\": " << rounds << ",\n"
     << "  \"rate_rps\": " << json_num(rate) << ",\n"
     << "  \"auto_rate\": " << (auto_rate ? "true" : "false") << ",\n"
     << "  \"workers\": " << raw.get_int("workers", 1) << ",\n"
     << "  \"queue_depth\": " << raw.get_int("queue-depth", 256) << ",\n"
     << "  \"max_batch\": " << raw.get_int("max-batch", tiny ? 8 : 16) << ",\n"
     << "  \"window_us\": " << raw.get_int("window-us", 200) << ",\n"
     << "  \"best_of\": " << best_of << ",\n"
     << "  \"placer\": \"" << placer_name << "\",\n"
     << "  \"mix\": \"hotset-80-20\",\n"
     << "  \"pool\": { \"small\": " << pool.n_small << ", \"medium5\": " << pool.n_medium5
     << ", \"medium\": " << pool.n_medium << " },\n"
     << "  \"identical\": " << (identical ? "true" : "false") << ",\n"
     << "  \"speedup_qps\": " << json_num(speedup) << ",\n"
     << "  \"p99_ratio\": " << json_num(p99_ratio) << ",\n";
  mode_json(os, "batched", best_batched, false);
  mode_json(os, "unbatched", best_unbatched, false);
  os << "  \"env\": {\n"
     << "    \"threads\": " << ThreadPool::global().size() << ",\n"
     << "    \"hardware_concurrency\": " << std::thread::hardware_concurrency() << ",\n"
     << "    \"simd_tier\": \"" << nn::simd::tier_name(nn::simd::active()) << "\",\n"
     << "    \"simd_detected\": \"" << nn::simd::tier_name(nn::simd::detect()) << "\"\n"
     << "  }\n"
     << "}\n";
  os.flush();
  SC_CHECK(os.good(), "JSON write to '" << out << "' failed (disk full or I/O error?)");
  os.close();
  std::cout << "JSON written to " << out << "\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "bench_serve: " << e.what() << '\n';
  return 1;
}
