// Figure 9 — data-saturation-rate distributions of the edges that survive
// coarsening, comparing Metis-style heavy-edge-matching coarsening with the
// trained RL coarsening model at matched compression ratios.
// Expected shape: the RL model leaves fewer high-saturation edges uncollapsed
// (it hides heavy communication inside merged nodes).
#include <iostream>
#include "bench_common.hpp"

#include "partition/allocate.hpp"

namespace {

// Saturation rates of edges whose endpoints end up in *different* groups.
void residual_saturation(const sc::rl::GraphContext& ctx, const sc::graph::Coarsening& c,
                         std::vector<double>& out) {
  const auto& g = *ctx.graph;
  const double bw = ctx.simulator.spec().bandwidth;
  const double rate = ctx.simulator.spec().source_rate;
  for (sc::graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& ch = g.edge(e);
    if (c.node_map[ch.src] == c.node_map[ch.dst]) continue;
    out.push_back(rate * ctx.profile.edge_traffic[e] / bw);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sc;
  const auto args = bench::BenchArgs::parse(argc, argv);
  std::cout << "[Figure 9] Residual edge saturation after coarsening\n";

  const auto ds =
      gen::make_dataset(gen::Setting::Medium, args.n(24), args.n(24), args.seed);
  const auto spec = rl::to_cluster_spec(ds.config.workload);
  auto framework =
      bench::train_framework(ds.train, spec, args.epochs(16), args.seed + 1);

  const auto contexts = rl::make_contexts(ds.test, spec);
  std::vector<double> metis_sat, ours_sat;
  double mean_ratio = 0.0;
  {
    nn::NoGradGuard no_grad;
    for (const auto& ctx : contexts) {
      const auto logits = framework.policy().logits(ctx.features);
      const auto mask = framework.policy().greedy(logits.value());
      const auto ours = gnn::CoarseningPolicy::apply(*ctx.graph, ctx.profile, mask);
      // Metis coarsening to the same target size for a fair comparison.
      const auto metis_c = partition::metis_coarsen(*ctx.graph, ctx.profile,
                                                    ours.num_coarse_nodes());
      residual_saturation(ctx, ours, ours_sat);
      residual_saturation(ctx, metis_c, metis_sat);
      mean_ratio += ours.compression_ratio();
    }
  }
  mean_ratio /= static_cast<double>(contexts.size());

  std::cout << "\nMean policy compression ratio: " << metrics::Table::fmt(mean_ratio, 2)
            << "x (Metis coarsened to the same node counts)\n\n";
  const double hi = 0.5;
  metrics::print_histogram(std::cout, metrics::histogram(metis_sat, 0.0, hi, 10),
                           "Metis coarsening — surviving edge saturation:");
  std::cout << '\n';
  metrics::print_histogram(std::cout, metrics::histogram(ours_sat, 0.0, hi, 10),
                           "RL coarsening model — surviving edge saturation:");

  const auto m_stats = metrics::mean_std(metis_sat);
  const auto o_stats = metrics::mean_std(ours_sat);
  std::cout << "\nMean surviving saturation: Metis "
            << metrics::Table::fmt(m_stats.mean, 4) << " vs RL model "
            << metrics::Table::fmt(o_stats.mean, 4) << '\n';

  metrics::write_series_csv(args.csv_dir + "/fig9.csv",
                            {{"metis", metis_sat}, {"coarsen", ours_sat}});
  std::cout << "\nExpected shape (paper Fig. 9): more of the RL model's surviving\n"
               "edges sit in the low-saturation bins.\n";
  return 0;
}
