// Figure 1 — motivation: on medium graphs (100-200 nodes) the learned
// direct-placement model (Graph-enc-dec) *underperforms* the non-learned
// Metis partitioner, while on the small-graph benchmark it still wins.
// This crossover is what motivates the coarsening-partitioning paradigm.
#include <iostream>
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sc;
  const auto args = bench::BenchArgs::parse(argc, argv);

  std::cout << "[Figure 1] Metis vs Graph-enc-dec across graph scales\n";

  // ---- Small graphs (4-26 nodes): the regime where seq2seq models shine ----
  {
    const auto ds = gen::make_dataset(gen::Setting::Small, args.n(40), args.n(30),
                                      args.seed);
    const auto spec = rl::to_cluster_spec(ds.config.workload);

    baselines::GraphEncDecConfig cfg;
    cfg.seed = args.seed + 1;
    baselines::GraphEncDec ged(cfg);
    bench::train_direct(ged, ds.train, spec, args.epochs(12), args.seed + 2);

    const auto contexts = rl::make_contexts(ds.test, spec);
    const core::MetisAllocator metis;
    const core::DirectModelAllocator ged_alloc(ged);
    bench::compare({&metis, &ged_alloc}, contexts,
                   "Small graphs (4-26 nodes, 5 devices, 10K/s)",
                   args.csv_dir + "/fig1_small.csv");
  }

  // ---- Medium graphs (100-200 nodes): the crossover ------------------------
  {
    const auto ds = gen::make_dataset(gen::Setting::Medium, args.n(24), args.n(24),
                                      args.seed + 10);
    const auto spec = rl::to_cluster_spec(ds.config.workload);

    baselines::GraphEncDecConfig cfg;
    cfg.seed = args.seed + 11;
    baselines::GraphEncDec ged(cfg);
    bench::train_direct(ged, ds.train, spec, args.epochs(6), args.seed + 12);

    const auto contexts = rl::make_contexts(ds.test, spec);
    const core::MetisAllocator metis;
    const core::DirectModelAllocator ged_alloc(ged);
    bench::compare({&metis, &ged_alloc}, contexts,
                   "Medium graphs (100-200 nodes, 10 devices, 10K/s)",
                   args.csv_dir + "/fig1_medium.csv");
  }

  std::cout << "\nExpected shape (paper Fig. 1): Graph-enc-dec competitive on small\n"
               "graphs but clearly behind Metis on 100-200 node graphs.\n";
  return 0;
}
