// bench_huge — streaming/out-of-core Huge-tier harness (BENCH_huge.json).
//
// Proves the two claims of the streaming tier (DESIGN.md §9):
//
//   bounded memory : a 1M+-node serialized graph is ingested through the
//                    bounded-buffer CSR reader and partitioned with the
//                    shard-parallel streaming partitioner while peak RSS
//                    stays under a documented bound derived from the CSR
//                    footprint — never O(StreamGraph).
//   quality parity : on a mid-size tiled graph that BOTH paths can run, the
//                    streaming partitioner's weighted edge cut is within a
//                    few percent of the in-memory multilevel partitioner's
//                    (both cuts measured by the same csr_cut_weight metric).
//
// Peak-RSS methodology (EXPERIMENTS.md): VmHWM from /proc/self/status, reset
// between phases by writing "5" to /proc/self/clear_refs, with malloc_trim()
// first so freed generator memory is actually returned to the kernel. On
// kernels without resettable peak-RSS the rss fields are reported as 0 and
// the bound check is skipped (rss_supported=false).
//
// Usage:
//   bench_huge [--tiny] [--out BENCH_huge.json] [--seed N] [--threads N]
//   bench_huge --validate <file>   # re-parse an emitted JSON; exits non-zero
//                                  # if malformed (ctest smoke)
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <thread>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "bench_common.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "gen/dataset.hpp"
#include "gen/generator.hpp"
#include "graph/io.hpp"
#include "graph/streaming.hpp"
#include "nn/simd.hpp"
#include "partition/allocate.hpp"
#include "partition/streaming.hpp"
#include "partition/workspace.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// ---------------------------------------------------------------------------
// Peak-RSS plumbing (Linux): VmHWM / VmRSS from /proc/self/status, peak reset
// via /proc/self/clear_refs.
// ---------------------------------------------------------------------------
std::size_t status_kb(const char* key) {
  std::ifstream is("/proc/self/status");
  std::string line;
  const std::string prefix = std::string(key) + ":";
  while (std::getline(is, line)) {
    if (line.rfind(prefix, 0) == 0) {
      std::istringstream ls(line.substr(prefix.size()));
      std::size_t kb = 0;
      ls >> kb;
      return kb;
    }
  }
  return 0;
}

bool reset_peak_rss() {
#if defined(__GLIBC__)
  malloc_trim(0);  // return freed arena pages so the next peak is honest
#endif
  std::ofstream os("/proc/self/clear_refs");
  if (!os.good()) return false;
  os << "5\n";
  os.flush();
  return os.good();
}

double peak_rss_mb() { return static_cast<double>(status_kb("VmHWM")) / 1024.0; }

// ---------------------------------------------------------------------------
// Minimal JSON validation (recursive descent), mirroring bench_perf_reward.
// ---------------------------------------------------------------------------
struct JsonParser {
  const std::string& s;
  std::size_t pos = 0;

  explicit JsonParser(const std::string& text) : s(text) {}

  [[noreturn]] void fail(const std::string& what) const {
    throw sc::Error("JSON parse error at byte " + std::to_string(pos) + ": " + what);
  }
  void skip_ws() {
    while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                              s[pos] == '\r')) {
      ++pos;
    }
  }
  char peek() {
    skip_ws();
    if (pos >= s.size()) fail("unexpected end of input");
    return s[pos];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos;
  }
  void parse_string() {
    expect('"');
    while (pos < s.size() && s[pos] != '"') {
      if (s[pos] == '\\') ++pos;  // skip escaped char
      ++pos;
    }
    if (pos >= s.size()) fail("unterminated string");
    ++pos;
  }
  double parse_number() {
    skip_ws();
    const std::size_t start = pos;
    if (pos < s.size() && (s[pos] == '-' || s[pos] == '+')) ++pos;
    while (pos < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[pos])) || s[pos] == '.' ||
            s[pos] == 'e' || s[pos] == 'E' || s[pos] == '-' || s[pos] == '+')) {
      ++pos;
    }
    if (pos == start) fail("expected a number");
    const double v = std::strtod(s.substr(start, pos - start).c_str(), nullptr);
    if (!std::isfinite(v)) fail("non-finite number");
    return v;
  }
  void parse_literal(const char* lit) {
    skip_ws();
    for (const char* p = lit; *p; ++p, ++pos) {
      if (pos >= s.size() || s[pos] != *p) fail(std::string("expected '") + lit + "'");
    }
  }
  void parse_value() {
    const char c = peek();
    if (c == '{') {
      parse_object();
    } else if (c == '[') {
      expect('[');
      if (peek() != ']') {
        parse_value();
        while (peek() == ',') {
          ++pos;
          parse_value();
        }
      }
      expect(']');
    } else if (c == '"') {
      parse_string();
    } else if (c == 't') {
      parse_literal("true");
    } else if (c == 'f') {
      parse_literal("false");
    } else if (c == 'n') {
      parse_literal("null");
    } else {
      (void)parse_number();
    }
  }
  std::vector<std::string> parse_object() {
    std::vector<std::string> keys;
    expect('{');
    if (peek() != '}') {
      for (;;) {
        skip_ws();
        const std::size_t key_start = pos + 1;
        parse_string();
        keys.push_back(s.substr(key_start, pos - key_start - 1));
        expect(':');
        parse_value();
        if (peek() != ',') break;
        ++pos;
      }
    }
    expect('}');
    return keys;
  }
};

int validate_json(const std::string& path) {
  std::ifstream is(path);
  if (!is.good()) {
    std::cerr << "bench_huge: cannot open '" << path << "'\n";
    return 1;
  }
  std::stringstream buf;
  buf << is.rdbuf();
  const std::string text = buf.str();
  try {
    JsonParser parser(text);
    const auto keys = parser.parse_object();
    parser.skip_ws();
    if (parser.pos != text.size()) parser.fail("trailing garbage after object");
    for (const char* required : {"schema_version", "huge", "quality", "env"}) {
      bool found = false;
      for (const auto& k : keys) found = found || k == required;
      if (!found) throw sc::Error(std::string("missing required key '") + required + "'");
    }
    // Schema v2: the huge section must carry the interleaved A/B arms, the
    // per-stage breakdown, and the ingest-pipeline counters.
    for (const char* nested :
         {"\"arms\"", "\"baseline\"", "\"pipelined\"", "\"speedup\"", "\"placements_hash\"",
          "\"placements_identical\"", "\"stages\"", "\"pipeline\"", "\"ingest_chunks\"",
          "\"ingest_queue_peak\"", "\"degree_queue_peak\"", "\"eviction_batches\""}) {
      if (text.find(nested) == std::string::npos) {
        throw sc::Error(std::string("missing schema-v2 key ") + nested);
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "bench_huge: '" << path << "' is malformed: " << e.what() << '\n';
    return 1;
  }
  std::cout << "OK: " << path << " is well-formed JSON with the expected keys\n";
  return 0;
}

// ---------------------------------------------------------------------------
// Phase plumbing
// ---------------------------------------------------------------------------

/// Generates one graph at the Huge workload parameterisation but a
/// caller-chosen node budget, and serializes it to `path`. Returns (nodes,
/// edges, gen+write seconds). The StreamGraph is destroyed before returning
/// so the streaming phases never coexist with a full materialization.
struct GenResult {
  std::size_t nodes = 0;
  std::size_t edges = 0;
  double seconds = 0.0;
};

GenResult generate_to_file(const std::string& path, std::size_t lo, std::size_t hi,
                           std::uint64_t seed) {
  using namespace sc;
  const auto t0 = Clock::now();
  gen::GeneratorConfig cfg = gen::setting_config(gen::Setting::Huge);
  cfg.topology.min_nodes = lo;
  cfg.topology.max_nodes = hi;
  gen::check_topology_bounds(cfg.topology);
  GenResult r;
  {
    const auto graphs = gen::generate_graphs(cfg, 1, seed, "huge/");
    r.nodes = graphs[0].num_nodes();
    r.edges = graphs[0].num_edges();
    graph::save_graphs(path, graphs);
  }
  r.seconds = seconds_since(t0);
  return r;
}

sc::sim::ClusterSpec huge_spec() {
  return sc::rl::to_cluster_spec(sc::gen::setting_config(sc::gen::Setting::Huge).workload);
}

/// Shard count pinned for every bench run: the auto heuristic scales with
/// the pool size, which would make placements thread-count dependent and
/// break the cross-thread bit-identity smoke in CI.
constexpr std::size_t kBenchShards = 8;

/// FNV-1a over the placement labels — a compact fingerprint for the
/// cross-arm / cross-thread bit-identity assertions.
std::uint64_t placement_hash(const std::vector<int>& placement) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const int p : placement) {
    for (int b = 0; b < 4; ++b) {
      h ^= static_cast<std::uint64_t>((static_cast<std::uint32_t>(p) >> (8 * b)) & 0xFFu);
      h *= 1099511628211ULL;
    }
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

/// Flips every toggle this bench A/Bs in one move. `on` = the pipelined
/// production configuration; off = the serial baseline arm (the committed
/// behavior before the pipelined-ingest/heap-FM/workspace-coarsen changes).
void set_arm(bool on) {
  sc::graph::parallel_ingest::set_enabled(on);
  sc::partition::fm_heap::set_enabled(on);
  sc::partition::coarsen_ws::set_enabled(on);
  sc::partition::pipelined_streaming::set_enabled(on);
}

struct StreamingRun {
  double ingest_seconds = 0.0;
  double partition_seconds = 0.0;
  double peak_rss_mb = 0.0;
  double csr_mb = 0.0;
  double cut = 0.0;
  double imbalance = 0.0;
  std::size_t devices_used = 0;
  std::uint64_t hash = 0;
  sc::graph::StreamingReadStats read_stats;
  std::size_t degree_batches = 0;
  std::size_t degree_queue_peak = 0;
  sc::partition::StreamingStats stats;
  std::vector<int> placement;
};

/// Streaming-path run over a serialized graph: bounded-buffer CSR ingest +
/// out-of-core partition. Peak RSS covers exactly this function's body.
/// Honors whatever arm set_arm() selected.
// sc-lint: streaming-path
StreamingRun run_streaming(const std::string& path, const sc::sim::ClusterSpec& spec,
                           bool rss_supported) {
  using namespace sc;
  StreamingRun r;
  if (rss_supported) reset_peak_rss();
  const auto t0 = Clock::now();
  const partition::StreamingIngest ing = partition::streaming_read_csr(path);
  const graph::CsrGraph& g = ing.graph;
  const graph::CsrLoad load = graph::compute_csr_load(g);
  r.ingest_seconds = seconds_since(t0);
  r.read_stats = ing.read_stats;
  r.degree_batches = ing.degree_batches;
  r.degree_queue_peak = ing.degree_queue_peak;
  r.csr_mb = static_cast<double>(g.footprint_bytes()) / (1024.0 * 1024.0);

  const auto t1 = Clock::now();
  partition::StreamingOptions opts;
  opts.num_shards = kBenchShards;
  opts.undirected_degree = &ing.undirected_degree;
  r.placement = partition::streaming_allocate(g, spec, opts, &r.stats);
  r.partition_seconds = seconds_since(t1);
  r.hash = placement_hash(r.placement);

  r.cut = partition::csr_cut_weight(g, load, r.placement);
  r.imbalance = partition::csr_imbalance(g, load, r.placement, spec.num_devices);
  r.devices_used = sim::devices_used(r.placement);
  if (rss_supported) r.peak_rss_mb = peak_rss_mb();
  return r;
}

struct InMemoryRun {
  double seconds = 0.0;
  double peak_rss_mb = 0.0;
  double cut = 0.0;
  double imbalance = 0.0;
};

/// In-memory baseline over the same file: full StreamGraph materialization +
/// multilevel partition. Cut/imbalance use the same CSR-view metric as the
/// streaming run so the comparison is apples to apples.
InMemoryRun run_in_memory(const std::string& path, const sc::sim::ClusterSpec& spec,
                          bool rss_supported) {
  using namespace sc;
  InMemoryRun r;
  if (rss_supported) reset_peak_rss();
  const auto t0 = Clock::now();
  std::vector<int> placement;
  {
    const auto graphs = graph::load_graphs(path);
    placement = partition::metis_allocate(graphs[0], spec);
  }
  r.seconds = seconds_since(t0);
  if (rss_supported) r.peak_rss_mb = peak_rss_mb();

  // Score on the CSR view (identical metric to the streaming run).
  const graph::CsrGraph g = graph::read_csr(path);
  const graph::CsrLoad load = graph::compute_csr_load(g);
  r.cut = partition::csr_cut_weight(g, load, placement);
  r.imbalance = partition::csr_imbalance(g, load, placement, spec.num_devices);
  return r;
}

std::string json_num(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream os;
  os << std::setprecision(12) << v;
  return os.str();
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace sc;
  const Flags raw(argc, argv);
  if (raw.has("validate")) return validate_json(raw.get_string("validate", ""));

  const auto args = bench::BenchArgs::parse(argc, argv);
  const bool tiny = raw.get_bool("tiny", false);
  const std::string out = raw.get_string("out", "BENCH_huge.json");
  std::cout << "[huge] Streaming/out-of-core tier harness" << (tiny ? " (tiny)" : "") << "\n";

  const bool rss_supported = reset_peak_rss();
  if (!rss_supported) {
    std::cout << "  (peak-RSS reset unsupported on this kernel; rss fields will be 0)\n";
  }

  const sim::ClusterSpec spec = huge_spec();

  // ---- Huge phase: streaming path only at full (or tiny) scale ------------
  const std::size_t huge_lo = tiny ? 24'000 : 1'000'000;
  const std::size_t huge_hi = tiny ? 26'000 : 1'100'000;
  const std::string huge_path = tiny ? "bench_huge_tiny.txt" : "bench_huge_graph.txt";
  const GenResult gen_huge = generate_to_file(huge_path, huge_lo, huge_hi, args.seed);
  std::cout << "  gen        " << gen_huge.nodes << " nodes, " << gen_huge.edges
            << " edges in " << metrics::Table::fmt(gen_huge.seconds, 1) << " s -> "
            << huge_path << "\n";

  // Interleaved min-of-N A/B: each repetition runs the serial baseline arm
  // (every toggle off — the pre-pipelining behavior) and the pipelined arm
  // back to back, so drift (page cache, frequency scaling) hits both arms
  // equally. Timings take the per-arm minimum; placements must be
  // bit-identical across every run of both arms.
  const std::size_t reps = 2;
  StreamingRun off_best;
  StreamingRun huge;  // pipelined arm, the production configuration
  double off_min_e2e = 0.0;
  double on_min_e2e = 0.0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    set_arm(false);
    StreamingRun off = run_streaming(huge_path, spec, rss_supported);
    set_arm(true);
    StreamingRun on = run_streaming(huge_path, spec, rss_supported);
    const double off_e2e = off.ingest_seconds + off.partition_seconds;
    const double on_e2e = on.ingest_seconds + on.partition_seconds;
    SC_CHECK(off.hash == on.hash,
             "pipelined arm diverged from the serial baseline: placement hash "
                 << hex64(on.hash) << " vs " << hex64(off.hash));
    if (rep == 0 || off_e2e < off_min_e2e) {
      off_min_e2e = off_e2e;
      off_best = std::move(off);
    }
    if (rep == 0 || on_e2e < on_min_e2e) {
      on_min_e2e = on_e2e;
      huge = std::move(on);
    }
  }
  SC_CHECK(off_best.hash == huge.hash, "placement hash drifted across repetitions");
  const double speedup = on_min_e2e > 0.0 ? off_min_e2e / on_min_e2e : 1.0;

  // Documented bound: the streaming pipeline's working set is the CSR plus
  // load arrays, the undirected adjacency, the shard/coarse graphs and the
  // eviction heap — all linear in the CSR with small constants. 8x the CSR
  // footprint + 160 MiB headroom (allocator slack, binary, thread stacks)
  // holds with a wide margin; a full StreamGraph materialization (~5x the
  // CSR before any partitioner state) would blow through it.
  const double rss_bound_mb = 8.0 * huge.csr_mb + 160.0;
  const bool rss_ok = !rss_supported || huge.peak_rss_mb <= rss_bound_mb;
  std::cout << "  baseline   ingest " << metrics::Table::fmt(off_best.ingest_seconds, 1)
            << " s, partition " << metrics::Table::fmt(off_best.partition_seconds, 1)
            << " s (e2e " << metrics::Table::fmt(off_min_e2e, 1) << " s, min of " << reps
            << ")\n";
  std::cout << "  pipelined  ingest " << metrics::Table::fmt(huge.ingest_seconds, 1)
            << " s, partition " << metrics::Table::fmt(huge.partition_seconds, 1)
            << " s (e2e " << metrics::Table::fmt(on_min_e2e, 1) << " s, speedup "
            << metrics::Table::fmt(speedup, 2) << "x, hash " << hex64(huge.hash) << ")\n";
  std::cout << "  stages     stream " << metrics::Table::fmt(huge.stats.stage_stream_s, 1)
            << " s, coarsen " << metrics::Table::fmt(huge.stats.stage_coarsen_s, 1)
            << " s, partition " << metrics::Table::fmt(huge.stats.stage_partition_s, 1)
            << " s, refine " << metrics::Table::fmt(huge.stats.stage_refine_s, 1) << " s\n";
  std::cout << "  pipeline   chunks " << huge.read_stats.chunks << ", stitches "
            << huge.read_stats.stitches << ", ingest q peak " << huge.read_stats.queue_peak
            << ", degree batches " << huge.degree_batches << " (q peak "
            << huge.degree_queue_peak << "), eviction batches "
            << huge.stats.eviction_batches << "\n";
  std::cout << "  memory     csr " << metrics::Table::fmt(huge.csr_mb, 1)
            << " MiB, peak rss " << metrics::Table::fmt(huge.peak_rss_mb, 1)
            << " MiB (bound " << metrics::Table::fmt(rss_bound_mb, 1) << ", "
            << (rss_ok ? "within" : "EXCEEDED") << ")\n";
  std::cout << "  quality    cut " << metrics::Table::fmt(huge.cut, 0) << ", imbalance "
            << metrics::Table::fmt(huge.imbalance, 3) << ", devices " << huge.devices_used
            << "/" << spec.num_devices << ", shards " << huge.stats.num_shards
            << ", coarse " << huge.stats.coarse_nodes << ", evictions "
            << huge.stats.evictions << "\n";

  // ---- Quality phase: both paths at the largest co-runnable scale ---------
  const std::size_t q_lo = tiny ? 6'000 : 110'000;
  const std::size_t q_hi = tiny ? 7'000 : 120'000;
  const std::string q_path = tiny ? "bench_huge_q_tiny.txt" : "bench_huge_q.txt";
  const GenResult gen_q = generate_to_file(q_path, q_lo, q_hi, args.seed + 1);

  const StreamingRun q_stream = run_streaming(q_path, spec, rss_supported);
  const InMemoryRun q_mem = run_in_memory(q_path, spec, rss_supported);
  const double cut_ratio = q_mem.cut > 0.0 ? q_stream.cut / q_mem.cut : 1.0;
  const bool quality_ok = cut_ratio <= 1.05;
  std::cout << "  ab@" << gen_q.nodes << "  cut streaming "
            << metrics::Table::fmt(q_stream.cut, 0) << " vs in-memory "
            << metrics::Table::fmt(q_mem.cut, 0) << " (ratio "
            << metrics::Table::fmt(cut_ratio, 3) << ", "
            << (quality_ok ? "within 5%" : "OVER 5%") << "); rss "
            << metrics::Table::fmt(q_stream.peak_rss_mb, 1) << " vs "
            << metrics::Table::fmt(q_mem.peak_rss_mb, 1) << " MiB\n";

  std::remove(huge_path.c_str());
  std::remove(q_path.c_str());

  std::ofstream os(out);
  SC_CHECK(os.good(), "cannot open output file '" << out << "'");
  os << "{\n"
     << "  \"schema_version\": 2,\n"
     << "  \"tiny\": " << (tiny ? "true" : "false") << ",\n"
     << "  \"seed\": " << args.seed << ",\n"
     << "  \"huge\": {\n"
     << "    \"nodes\": " << gen_huge.nodes << ",\n"
     << "    \"edges\": " << gen_huge.edges << ",\n"
     << "    \"gen_seconds\": " << json_num(gen_huge.seconds) << ",\n"
     << "    \"reps\": " << reps << ",\n"
     << "    \"arms\": {\n"
     << "      \"baseline\": {\n"
     << "        \"ingest_seconds\": " << json_num(off_best.ingest_seconds) << ",\n"
     << "        \"partition_seconds\": " << json_num(off_best.partition_seconds) << ",\n"
     << "        \"total_seconds\": " << json_num(off_min_e2e) << "\n"
     << "      },\n"
     << "      \"pipelined\": {\n"
     << "        \"ingest_seconds\": " << json_num(huge.ingest_seconds) << ",\n"
     << "        \"partition_seconds\": " << json_num(huge.partition_seconds) << ",\n"
     << "        \"total_seconds\": " << json_num(on_min_e2e) << "\n"
     << "      }\n"
     << "    },\n"
     << "    \"speedup\": " << json_num(speedup) << ",\n"
     << "    \"placements_hash\": \"" << hex64(huge.hash) << "\",\n"
     << "    \"placements_identical\": true,\n"
     << "    \"stages\": {\n"
     << "      \"stream_s\": " << json_num(huge.stats.stage_stream_s) << ",\n"
     << "      \"coarsen_s\": " << json_num(huge.stats.stage_coarsen_s) << ",\n"
     << "      \"partition_s\": " << json_num(huge.stats.stage_partition_s) << ",\n"
     << "      \"refine_s\": " << json_num(huge.stats.stage_refine_s) << "\n"
     << "    },\n"
     << "    \"pipeline\": {\n"
     << "      \"ingest_chunks\": " << huge.read_stats.chunks << ",\n"
     << "      \"ingest_stitches\": " << huge.read_stats.stitches << ",\n"
     << "      \"ingest_queue_peak\": " << huge.read_stats.queue_peak << ",\n"
     << "      \"degree_batches\": " << huge.degree_batches << ",\n"
     << "      \"degree_queue_peak\": " << huge.degree_queue_peak << ",\n"
     << "      \"eviction_batches\": " << huge.stats.eviction_batches << ",\n"
     << "      \"refine_spec_blocks\": " << huge.stats.refine_spec_blocks << "\n"
     << "    },\n"
     << "    \"ingest_seconds\": " << json_num(huge.ingest_seconds) << ",\n"
     << "    \"partition_seconds\": " << json_num(huge.partition_seconds) << ",\n"
     << "    \"csr_mb\": " << json_num(huge.csr_mb) << ",\n"
     << "    \"peak_rss_mb\": " << json_num(huge.peak_rss_mb) << ",\n"
     << "    \"rss_bound_mb\": " << json_num(rss_bound_mb) << ",\n"
     << "    \"rss_supported\": " << (rss_supported ? "true" : "false") << ",\n"
     << "    \"rss_within_bound\": " << (rss_ok ? "true" : "false") << ",\n"
     << "    \"cut\": " << json_num(huge.cut) << ",\n"
     << "    \"imbalance\": " << json_num(huge.imbalance) << ",\n"
     << "    \"devices_used\": " << huge.devices_used << ",\n"
     << "    \"num_shards\": " << huge.stats.num_shards << ",\n"
     << "    \"coarse_nodes\": " << huge.stats.coarse_nodes << ",\n"
     << "    \"cross_shard_edges\": " << huge.stats.cross_shard_edges << ",\n"
     << "    \"buffer_peak\": " << huge.stats.buffer_peak << ",\n"
     << "    \"evictions\": " << huge.stats.evictions << "\n"
     << "  },\n"
     << "  \"quality\": {\n"
     << "    \"nodes\": " << gen_q.nodes << ",\n"
     << "    \"edges\": " << gen_q.edges << ",\n"
     << "    \"cut_streaming\": " << json_num(q_stream.cut) << ",\n"
     << "    \"cut_inmemory\": " << json_num(q_mem.cut) << ",\n"
     << "    \"cut_ratio\": " << json_num(cut_ratio) << ",\n"
     << "    \"within_tolerance\": " << (quality_ok ? "true" : "false") << ",\n"
     << "    \"imbalance_streaming\": " << json_num(q_stream.imbalance) << ",\n"
     << "    \"imbalance_inmemory\": " << json_num(q_mem.imbalance) << ",\n"
     << "    \"peak_rss_streaming_mb\": " << json_num(q_stream.peak_rss_mb) << ",\n"
     << "    \"peak_rss_inmemory_mb\": " << json_num(q_mem.peak_rss_mb) << ",\n"
     << "    \"seconds_streaming\": "
     << json_num(q_stream.ingest_seconds + q_stream.partition_seconds) << ",\n"
     << "    \"seconds_inmemory\": " << json_num(q_mem.seconds) << "\n"
     << "  },\n"
     << "  \"env\": {\n"
     << "    \"threads\": " << ThreadPool::global().size() << ",\n"
     << "    \"hardware_concurrency\": " << std::thread::hardware_concurrency() << ",\n"
     << "    \"simd_tier\": \"" << nn::simd::tier_name(nn::simd::active()) << "\",\n"
     << "    \"simd_detected\": \"" << nn::simd::tier_name(nn::simd::detect()) << "\"\n"
     << "  }\n"
     << "}\n";
  os.flush();
  SC_CHECK(os.good(), "JSON write to '" << out << "' failed (disk full or I/O error?)");
  os.close();
  std::cout << "JSON written to " << out << "\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "bench_huge: " << e.what() << '\n';
  return 1;
}
