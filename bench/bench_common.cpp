#include "bench_common.hpp"

#include <iostream>

namespace sc::bench {

std::vector<metrics::Series> compare(const std::vector<const core::Allocator*>& allocators,
                                     const std::vector<rl::GraphContext>& contexts,
                                     const std::string& title,
                                     const std::string& csv_path) {
  ThreadPool& pool = ThreadPool::global();
  std::vector<metrics::Series> series;
  for (const core::Allocator* a : allocators) {
    series.push_back(to_series(core::evaluate_allocator(*a, contexts, &pool)));
  }
  std::cout << "\n=== " << title << " ===\n";
  metrics::print_cdf_comparison(std::cout, series);
  metrics::print_auc_table(std::cout, series);
  if (!csv_path.empty()) metrics::write_series_csv(csv_path, series);
  return series;
}

}  // namespace sc::bench
