// Table II — ablation study at (5K/s, 5 devices, 100-200 nodes):
//   * the full framework (Coarsen+Metis)
//   * without edge features in the graph-encoding module
//   * without edge features in the edge-collapsing module
//   * Coarsen+Graph-enc-dec (placement model swap)
//   * Coarsen-only (no partitioning model)
//   * the Graph-enc-dec direct baseline
// Expected shape: removing either set of edge features hurts (collapsing
// features more), Coarsen-only barely beats Metis, the full framework wins.
#include <iostream>
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sc;
  const auto args = bench::BenchArgs::parse(argc, argv);
  std::cout << "[Table II] Ablations on (5K/s, 5 devices, 100-200 nodes)\n";

  const auto ds = gen::make_dataset(gen::Setting::MediumSmallCluster, args.n(24),
                                    args.n(24), args.seed);
  const auto spec = rl::to_cluster_spec(ds.config.workload);
  const std::size_t epochs = args.epochs(16);
  const std::size_t ged_epochs = args.epochs(6);

  auto full = bench::train_framework(ds.train, spec, epochs, args.seed + 1);
  auto no_enc = bench::train_framework(ds.train, spec, epochs, args.seed + 2,
                                       core::PlacerKind::Metis,
                                       /*edge_encoding=*/false, /*edge_collapsing=*/true);
  auto no_col = bench::train_framework(ds.train, spec, epochs, args.seed + 3,
                                       core::PlacerKind::Metis,
                                       /*edge_encoding=*/true, /*edge_collapsing=*/false);
  auto coarsen_only = bench::train_framework(ds.train, spec, epochs, args.seed + 4,
                                             core::PlacerKind::CoarsenOnly);

  baselines::GraphEncDecConfig ged_cfg;
  ged_cfg.seed = args.seed + 5;
  baselines::GraphEncDec ged(ged_cfg);
  bench::train_direct(ged, ds.train, spec, ged_epochs, args.seed + 6);

  const auto contexts = rl::make_contexts(ds.test, spec);
  const core::MetisAllocator metis;
  const core::CoarsenAllocator a_full(full.policy(), full.placer(), "Coarsen+Metis");
  const core::CoarsenAllocator a_no_enc(no_enc.policy(), no_enc.placer(),
                                        "w/o edge-encoding features");
  const core::CoarsenAllocator a_no_col(no_col.policy(), no_col.placer(),
                                        "w/o edge-collapsing features");
  const core::CoarsenAllocator a_ged(full.policy(), baselines::learned_placer(ged),
                                     "Coarsen+Graph-enc-dec");
  const core::CoarsenAllocator a_only(coarsen_only.policy(), coarsen_only.placer(),
                                      "Coarsen-only");
  const core::DirectModelAllocator a_direct(ged);

  bench::compare({&metis, &a_full, &a_no_enc, &a_no_col, &a_ged, &a_only, &a_direct},
                 contexts, "Table II ablations", args.csv_dir + "/table2.csv");
  return 0;
}
