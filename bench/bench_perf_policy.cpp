// bench_perf_policy — policy-forward performance harness (BENCH_perf_policy.json).
//
// Measures the PR-2 levers on the actor side of training:
//   forward : encoder+scorer forwards/sec, one block-diagonal batched forward
//             over the whole curriculum level vs one forward per graph
//             (identical logits by construction).
//   fused   : per-op forward+backward timings of the fused kernels
//             (linear_tanh, gather_add_tanh, masked_logprob_sum) vs their
//             unfused compositions.
//   train   : real ReinforceTrainer epochs with every lever on — end-to-end
//             epoch time plus tensor-arena counters (allocation traffic,
//             reuse rate, high-water bytes) over those epochs.
//   ab      : the epoch-start sampling pass + greedy health pass exactly as
//             train_epoch runs them in steady state. Optimized arm: one
//             block-diagonal batched forward per pass (the sampling pass
//             reuses the logits carried from the previous greedy pass) +
//             fused kernels + arena. Baseline arm (PR-1): two per-graph
//             forward sweeps, unfused, arena off. Blocked GEMM is on in both
//             arms. Both arms produce bit-identical masks; the speedup is
//             redundant-forward and overhead removal.
//
// Usage:
//   bench_perf_policy [--tiny] [--out BENCH_perf_policy.json] [--seed N]
//                     [--threads N] [--verbose]
//   bench_perf_policy --validate <file>  # re-parse an emitted JSON; exits
//                                        # non-zero if malformed (ctest smoke)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <limits>
#include <sstream>
#include <thread>

#include "bench_common.hpp"
#include "nn/arena.hpp"
#include "nn/ops.hpp"
#include "nn/simd.hpp"
#include "rl/reinforce.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// ---------------------------------------------------------------------------
// Minimal JSON validation (recursive descent), mirroring bench_perf_train.
// ---------------------------------------------------------------------------
struct JsonParser {
  const std::string& s;
  std::size_t pos = 0;

  explicit JsonParser(const std::string& text) : s(text) {}

  [[noreturn]] void fail(const std::string& what) const {
    throw sc::Error("JSON parse error at byte " + std::to_string(pos) + ": " + what);
  }
  void skip_ws() {
    while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                              s[pos] == '\r')) {
      ++pos;
    }
  }
  char peek() {
    skip_ws();
    if (pos >= s.size()) fail("unexpected end of input");
    return s[pos];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos;
  }
  void parse_string() {
    expect('"');
    while (pos < s.size() && s[pos] != '"') {
      if (s[pos] == '\\') ++pos;  // skip escaped char
      ++pos;
    }
    if (pos >= s.size()) fail("unterminated string");
    ++pos;
  }
  double parse_number() {
    skip_ws();
    const std::size_t start = pos;
    if (pos < s.size() && (s[pos] == '-' || s[pos] == '+')) ++pos;
    while (pos < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[pos])) || s[pos] == '.' ||
            s[pos] == 'e' || s[pos] == 'E' || s[pos] == '-' || s[pos] == '+')) {
      ++pos;
    }
    if (pos == start) fail("expected a number");
    const double v = std::strtod(s.substr(start, pos - start).c_str(), nullptr);
    if (!std::isfinite(v)) fail("non-finite number");
    return v;
  }
  void parse_literal(const char* lit) {
    skip_ws();
    for (const char* p = lit; *p; ++p, ++pos) {
      if (pos >= s.size() || s[pos] != *p) fail(std::string("expected '") + lit + "'");
    }
  }
  void parse_value() {
    const char c = peek();
    if (c == '{') {
      parse_object();
    } else if (c == '[') {
      expect('[');
      if (peek() != ']') {
        parse_value();
        while (peek() == ',') {
          ++pos;
          parse_value();
        }
      }
      expect(']');
    } else if (c == '"') {
      parse_string();
    } else if (c == 't') {
      parse_literal("true");
    } else if (c == 'f') {
      parse_literal("false");
    } else if (c == 'n') {
      parse_literal("null");
    } else {
      (void)parse_number();
    }
  }
  std::vector<std::string> parse_object() {
    std::vector<std::string> keys;
    expect('{');
    if (peek() != '}') {
      for (;;) {
        skip_ws();
        const std::size_t key_start = pos + 1;
        parse_string();
        keys.push_back(s.substr(key_start, pos - key_start - 1));
        expect(':');
        parse_value();
        if (peek() != ',') break;
        ++pos;
      }
    }
    expect('}');
    return keys;
  }
};

int validate_json(const std::string& path) {
  std::ifstream is(path);
  if (!is.good()) {
    std::cerr << "bench_perf_policy: cannot open '" << path << "'\n";
    return 1;
  }
  std::stringstream buf;
  buf << is.rdbuf();
  const std::string text = buf.str();
  try {
    JsonParser parser(text);
    const auto keys = parser.parse_object();
    parser.skip_ws();
    if (parser.pos != text.size()) parser.fail("trailing garbage after object");
    for (const char* required :
         {"schema_version", "speedup", "forwards_per_sec_batched",
          "forwards_per_sec_per_graph", "forward", "fused", "train", "arena", "ab",
          "simd", "env"}) {
      bool found = false;
      for (const auto& k : keys) found = found || k == required;
      if (!found) throw sc::Error(std::string("missing required key '") + required + "'");
    }
  } catch (const std::exception& e) {
    std::cerr << "bench_perf_policy: '" << path << "' is malformed: " << e.what() << '\n';
    return 1;
  }
  std::cout << "OK: " << path << " is well-formed JSON with the expected keys\n";
  return 0;
}

// ---------------------------------------------------------------------------
// Shared dataset: the default curriculum level — Setting::Small (4-26 node
// graphs, 5 devices), 40 training graphs as in bench_table1_main. Many small
// graphs is exactly the regime where per-graph forward overhead dominates
// and block-diagonal batching pays.
// ---------------------------------------------------------------------------
struct Level {
  std::vector<sc::graph::StreamGraph> graphs;
  std::vector<sc::rl::GraphContext> contexts;
  sc::gnn::BatchedGraphFeatures batched;
};

Level make_level(bool tiny, std::uint64_t seed) {
  using namespace sc;
  const gen::GeneratorConfig gcfg = gen::setting_config(gen::Setting::Small);
  Level level;
  level.graphs = gen::generate_graphs(gcfg, tiny ? 8 : 40, seed);
  level.contexts = rl::make_contexts(level.graphs, rl::to_cluster_spec(gcfg.workload));
  std::vector<const gnn::GraphFeatures*> parts;
  for (const auto& ctx : level.contexts) parts.push_back(&ctx.features);
  level.batched = gnn::batch_features(parts);
  return level;
}

/// Repeats `body` until `min_seconds` elapse; returns (reps, elapsed).
template <typename Fn>
std::pair<std::size_t, double> time_loop(double min_seconds, Fn&& body) {
  body();  // warm up
  std::size_t reps = 0;
  const auto t0 = Clock::now();
  double elapsed = 0.0;
  while (elapsed < min_seconds) {
    body();
    ++reps;
    elapsed = seconds_since(t0);
  }
  return {reps, elapsed};
}

// ---------------------------------------------------------------------------
// Phase 1: batched vs per-graph encoder+scorer forwards/sec.
// ---------------------------------------------------------------------------
struct ForwardResult {
  std::size_t graphs = 0;
  double forwards_per_sec_batched = 0.0;
  double forwards_per_sec_per_graph = 0.0;
  double speedup = 0.0;
};

ForwardResult bench_forward(const Level& level, const sc::gnn::CoarseningPolicy& policy,
                            bool tiny) {
  using namespace sc;
  nn::NoGradGuard no_grad;
  const double min_seconds = tiny ? 0.05 : 0.4;
  double sink = 0.0;

  const auto [batched_reps, batched_s] = time_loop(min_seconds, [&] {
    const nn::Tensor t = policy.logits(level.batched.merged);
    sink += t.value()[0];
  });
  const auto [solo_reps, solo_s] = time_loop(min_seconds, [&] {
    for (const auto& ctx : level.contexts) {
      const nn::Tensor t = policy.logits(ctx.features);
      sink += t.value()[0];
    }
  });
  if (sink == 42.125) std::cerr << "";  // keep the forwards alive

  ForwardResult r;
  r.graphs = level.contexts.size();
  const double per_pass = static_cast<double>(r.graphs);
  r.forwards_per_sec_batched = per_pass * static_cast<double>(batched_reps) / batched_s;
  r.forwards_per_sec_per_graph = per_pass * static_cast<double>(solo_reps) / solo_s;
  r.speedup = r.forwards_per_sec_batched / r.forwards_per_sec_per_graph;
  return r;
}

// ---------------------------------------------------------------------------
// Phase 2: fused vs unfused kernel forward+backward timings.
// ---------------------------------------------------------------------------
struct FusedOpResult {
  double us_fused = 0.0;
  double us_unfused = 0.0;
  double speedup = 0.0;
};

struct FusedResult {
  FusedOpResult linear_tanh;
  FusedOpResult gather_add_tanh;
  FusedOpResult masked_logprob_sum;
};

template <typename Fn>
FusedOpResult ab_op(double min_seconds, Fn&& step) {
  FusedOpResult r;
  const bool prev = sc::nn::fused::set_enabled(true);
  const auto [fused_reps, fused_s] = time_loop(min_seconds, step);
  sc::nn::fused::set_enabled(false);
  const auto [plain_reps, plain_s] = time_loop(min_seconds, step);
  sc::nn::fused::set_enabled(prev);
  r.us_fused = fused_s / static_cast<double>(fused_reps) * 1e6;
  r.us_unfused = plain_s / static_cast<double>(plain_reps) * 1e6;
  r.speedup = r.us_unfused / r.us_fused;
  return r;
}

FusedResult bench_fused(bool tiny, std::uint64_t seed) {
  using namespace sc::nn;
  sc::Rng rng(seed + 31);
  const double min_seconds = tiny ? 0.04 : 0.25;
  FusedResult r;

  // Shapes sized like one encoder layer of the full curriculum level
  // (~1000 packed nodes, hidden 24; ~1300 packed edges).
  const std::size_t n = tiny ? 128 : 1024, k = 48, m = 24, edges = tiny ? 160 : 1344;
  const Tensor x = Tensor::randn({n, k}, rng, 0.5, false);
  Tensor w = Tensor::randn({k, m}, rng, 0.5, true);
  Tensor b = Tensor::randn({m}, rng, 0.5, true);
  r.linear_tanh = ab_op(min_seconds, [&] {
    Tensor loss = sum(linear_tanh(x, w, b));
    loss.backward();
    w.data().grad.clear();
    b.data().grad.clear();
  });

  Tensor base = Tensor::randn({n, m}, rng, 0.5, true);
  Tensor addend = Tensor::randn({edges, m}, rng, 0.5, true);
  std::vector<std::size_t> index(edges);
  for (std::size_t e = 0; e < edges; ++e) index[e] = rng.index(n);
  r.gather_add_tanh = ab_op(min_seconds, [&] {
    Tensor loss = sum(gather_add_tanh(base, index, addend));
    loss.backward();
    base.data().grad.clear();
    addend.data().grad.clear();
  });

  // A policy-update batch: 6 episodes over one graph's logits.
  const std::size_t logits_n = tiny ? 60 : 120, episodes = 6;
  Tensor logits = Tensor::randn({logits_n}, rng, 0.5, true);
  std::vector<std::vector<int>> masks(episodes, std::vector<int>(logits_n));
  std::vector<double> coeffs(episodes);
  for (std::size_t j = 0; j < episodes; ++j) {
    for (int& a : masks[j]) a = rng.bernoulli(0.3) ? 1 : 0;
    coeffs[j] = rng.normal();
  }
  r.masked_logprob_sum = ab_op(min_seconds, [&] {
    Tensor loss = masked_logprob_sum(logits, masks, coeffs, 1.0 / 7.0);
    loss.backward();
    logits.data().grad.clear();
  });
  return r;
}

// ---------------------------------------------------------------------------
// Phase 3: real training epochs with every lever on + arena counters.
// ---------------------------------------------------------------------------
struct TrainResult {
  std::size_t epochs = 0;
  double seconds = 0.0;
  double epoch_seconds = 0.0;
  std::uint64_t dedup_hits = 0;
  sc::nn::arena::ArenaStats arena;
  double arena_reuse_rate = 0.0;
};

TrainResult bench_train(const Level& level, bool tiny, std::uint64_t seed) {
  using namespace sc;
  auto contexts = rl::make_contexts(level.graphs, level.contexts[0].simulator.spec());
  gnn::PolicyConfig pcfg;
  pcfg.seed = seed * 7919 + 13;
  gnn::CoarseningPolicy policy(pcfg);
  rl::TrainerConfig tcfg;
  tcfg.seed = seed;
  rl::ReinforceTrainer trainer(policy, contexts, rl::metis_placer(), tcfg);

  TrainResult r;
  r.epochs = tiny ? 2 : 6;
  (void)trainer.train_epoch();  // warm up (caches, arena pools)
  nn::arena::reset_stats();
  const auto t0 = Clock::now();
  for (std::size_t e = 0; e < r.epochs; ++e) {
    r.dedup_hits += trainer.train_epoch().dedup_hits;
  }
  r.seconds = seconds_since(t0);
  r.epoch_seconds = r.seconds / static_cast<double>(r.epochs);
  r.arena = nn::arena::stats();
  r.arena_reuse_rate = r.arena.acquires == 0
                           ? 0.0
                           : static_cast<double>(r.arena.reuses) /
                                 static_cast<double>(r.arena.acquires);
  return r;
}

// ---------------------------------------------------------------------------
// Phase 4: A/B of the epoch-start sampling pass + greedy health pass.
// ---------------------------------------------------------------------------
struct AbResult {
  std::size_t passes = 0;
  double seconds_optimized = 0.0;
  double seconds_baseline = 0.0;
  double passes_per_sec_optimized = 0.0;
  double passes_per_sec_baseline = 0.0;
  double speedup = 0.0;
};

AbResult bench_ab(const Level& level, const sc::gnn::CoarseningPolicy& policy,
                  bool tiny, std::uint64_t seed) {
  using namespace sc;
  const std::size_t samples = 3;  // TrainerConfig::on_policy_samples default
  const std::size_t num_graphs = level.contexts.size();
  double sink = 0.0;

  // One "pass" = everything train_epoch does on the actor side per epoch:
  // sampling-pass logits + `samples` Bernoulli masks per graph, then
  // greedy-pass logits + one greedy mask per graph. Reward evaluation is
  // deliberately excluded (covered by bench_perf_train).
  //
  // The optimized arm mirrors the trainer's steady state: the sampling pass
  // reuses the logits carried over from the previous epoch's greedy pass
  // (parameters do not change between epochs), so each pass runs ONE batched
  // encoder forward. The baseline arm replays PR-1: one forward per graph for
  // sampling and again for greedy, no carry.
  std::vector<double> carry;
  const auto run_pass = [&](bool batched, std::uint64_t pass_seed) {
    nn::NoGradGuard no_grad;
    if (batched) {
      if (carry.empty()) carry = policy.logits(level.batched.merged).value();
      for (std::size_t gi = 0; gi < num_graphs; ++gi) {
        const std::vector<double> vals = gnn::logit_slice(carry, level.batched, gi);
        for (std::size_t s = 0; s < samples; ++s) {
          Rng rng(pass_seed * 977 + gi * samples + s);
          sink += policy.sample(vals, rng).size();
        }
      }
      carry = policy.logits(level.batched.merged).value();
      for (std::size_t gi = 0; gi < num_graphs; ++gi) {
        sink += policy.greedy(gnn::logit_slice(carry, level.batched, gi)).size();
      }
    } else {
      for (std::size_t gi = 0; gi < num_graphs; ++gi) {
        const nn::Tensor t = policy.logits(level.contexts[gi].features);
        for (std::size_t s = 0; s < samples; ++s) {
          Rng rng(pass_seed * 977 + gi * samples + s);
          sink += policy.sample(t.value(), rng).size();
        }
      }
      for (std::size_t gi = 0; gi < num_graphs; ++gi) {
        const nn::Tensor t = policy.logits(level.contexts[gi].features);
        sink += policy.greedy(t.value()).size();
      }
    }
  };

  const double min_seconds = tiny ? 0.05 : 0.5;
  AbResult r;

  // Optimized arm: batched + fused + arena (blocked GEMM already on).
  const bool prev_fused = nn::fused::set_enabled(true);
  const bool prev_arena = nn::arena::set_enabled(true);
  const auto [opt_reps, opt_s] =
      time_loop(min_seconds, [&] { run_pass(true, seed); });

  // Baseline arm (PR-1): per-graph forwards, unfused ops, no arena.
  nn::fused::set_enabled(false);
  nn::arena::set_enabled(false);
  const auto [base_reps, base_s] =
      time_loop(min_seconds, [&] { run_pass(false, seed); });
  nn::fused::set_enabled(prev_fused);
  nn::arena::set_enabled(prev_arena);
  if (sink == 42.125) std::cerr << "";  // keep the passes alive

  r.passes = opt_reps + base_reps;
  r.seconds_optimized = opt_s / static_cast<double>(opt_reps);
  r.seconds_baseline = base_s / static_cast<double>(base_reps);
  r.passes_per_sec_optimized = 1.0 / r.seconds_optimized;
  r.passes_per_sec_baseline = 1.0 / r.seconds_baseline;
  r.speedup = r.seconds_baseline / r.seconds_optimized;
  return r;
}

// ---------------------------------------------------------------------------
// Phase 5: SIMD dispatch A/B (kernels::set_simd on vs off). Per-kernel
// GFLOP/s at the encoder-layer GEMM shapes, plus the end-to-end
// policy-gradient compute: one batched encoder+scorer forward + backward —
// the whole differentiable part of a training epoch. Arms are interleaved
// (min-of-N per arm) so clock drift and cache state hit both equally.
// ---------------------------------------------------------------------------
struct KernelAb {
  double gflops_simd = 0.0;
  double gflops_scalar = 0.0;
  double speedup = 0.0;
};

struct SimdResult {
  const char* tier = "";
  KernelAb gemm_nn;
  KernelAb gemm_nt;
  KernelAb gemm_tn;
  double seconds_simd = 0.0;
  double seconds_scalar = 0.0;
  double speedup = 0.0;
};

SimdResult bench_simd(const Level& level, const sc::gnn::CoarseningPolicy& policy,
                      bool tiny) {
  using namespace sc;
  SimdResult r;
  r.tier = nn::simd::tier_name(nn::simd::active());
  const bool prev = nn::kernels::set_simd(true);

  // Encoder-layer shapes: ~1000 packed nodes x hidden 48 -> 24.
  const std::size_t n = tiny ? 128 : 1024, k = 48, m = 24;
  Rng rng(2026);
  std::vector<double> a(n * k), b(k * m), c(n * m);       // nn: (n,k)x(k,m)
  std::vector<double> ga(n * m), cnt(n * k), ctn(k * m);  // nt / tn operands
  for (double& x : a) x = rng.normal();
  for (double& x : b) x = rng.normal();
  for (double& x : ga) x = rng.normal();
  double sink = 0.0;

  const std::size_t reps = tiny ? 3 : 7;
  const std::size_t inner = tiny ? 20 : 50;
  const auto ab_kernel = [&](auto&& call, double flops) {
    KernelAb kr;
    call();  // warm up
    double best_on = std::numeric_limits<double>::infinity();
    double best_off = best_on;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      nn::kernels::set_simd(true);
      auto t0 = Clock::now();
      for (std::size_t i = 0; i < inner; ++i) call();
      best_on = std::min(best_on, seconds_since(t0));
      nn::kernels::set_simd(false);
      t0 = Clock::now();
      for (std::size_t i = 0; i < inner; ++i) call();
      best_off = std::min(best_off, seconds_since(t0));
    }
    nn::kernels::set_simd(true);
    const double total = flops * static_cast<double>(inner);
    kr.gflops_simd = total / best_on / 1e9;
    kr.gflops_scalar = total / best_off / 1e9;
    kr.speedup = best_off / best_on;
    return kr;
  };

  const double nd = static_cast<double>(n), kd = static_cast<double>(k),
               md = static_cast<double>(m);
  r.gemm_nn = ab_kernel(
      [&] { nn::kernels::gemm_nn(a.data(), b.data(), c.data(), n, k, m, false); },
      2.0 * nd * kd * md);
  r.gemm_nt = ab_kernel(
      [&] { nn::kernels::gemm_nt(ga.data(), b.data(), cnt.data(), n, m, k); },
      2.0 * nd * md * kd);
  r.gemm_tn = ab_kernel(
      [&] { nn::kernels::gemm_tn(a.data(), ga.data(), ctn.data(), n, k, m); },
      2.0 * nd * kd * md);
  sink += c[0] + cnt[0] + ctn[0];

  // End-to-end: forward + backward over the whole batched level.
  const auto fb = [&] {
    nn::Tensor t = policy.logits(level.batched.merged);
    nn::Tensor loss = nn::sum(t);
    loss.backward();
    for (nn::Tensor p : policy.parameters()) p.data().grad.clear();
    sink += loss.value()[0];
  };
  fb();  // warm up
  const std::size_t e2e_reps = tiny ? 2 : 5;
  const std::size_t e2e_inner = tiny ? 2 : 5;
  double best_on = std::numeric_limits<double>::infinity();
  double best_off = best_on;
  for (std::size_t rep = 0; rep < e2e_reps; ++rep) {
    nn::kernels::set_simd(true);
    auto t0 = Clock::now();
    for (std::size_t i = 0; i < e2e_inner; ++i) fb();
    best_on = std::min(best_on, seconds_since(t0));
    nn::kernels::set_simd(false);
    t0 = Clock::now();
    for (std::size_t i = 0; i < e2e_inner; ++i) fb();
    best_off = std::min(best_off, seconds_since(t0));
  }
  nn::kernels::set_simd(prev);
  if (sink == 42.125) std::cerr << "";  // keep the kernels alive

  r.seconds_simd = best_on / static_cast<double>(e2e_inner);
  r.seconds_scalar = best_off / static_cast<double>(e2e_inner);
  r.speedup = r.seconds_scalar / r.seconds_simd;
  return r;
}

std::string json_num(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream os;
  os << std::setprecision(12) << v;
  return os.str();
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace sc;
  const Flags raw(argc, argv);
  if (raw.has("validate")) return validate_json(raw.get_string("validate", ""));

  const auto args = bench::BenchArgs::parse(argc, argv);
  const bool tiny = raw.get_bool("tiny", false);
  const std::string out = raw.get_string("out", "BENCH_perf_policy.json");
  std::cout << "[perf_policy] Policy-forward performance harness"
            << (tiny ? " (tiny)" : "") << "\n";

  const Level level = make_level(tiny, args.seed);
  gnn::PolicyConfig pcfg;
  pcfg.seed = args.seed * 7919 + 13;
  const gnn::CoarseningPolicy policy(pcfg);
  std::cout << "  level   " << level.contexts.size() << " graphs, "
            << level.batched.node_offset.back() << " packed nodes, "
            << level.batched.edge_offset.back() << " packed edges\n";

  const auto fwd = bench_forward(level, policy, tiny);
  std::cout << "  forward batched " << metrics::Table::fmt(fwd.forwards_per_sec_batched, 0)
            << " graph-forwards/s vs per-graph "
            << metrics::Table::fmt(fwd.forwards_per_sec_per_graph, 0) << " ("
            << metrics::Table::fmt(fwd.speedup, 2) << "x)\n";

  const auto fused = bench_fused(tiny, args.seed);
  const auto show_op = [](const char* name, const FusedOpResult& op) {
    std::cout << "  fused   " << name << ": " << metrics::Table::fmt(op.us_fused, 1)
              << " us/op vs " << metrics::Table::fmt(op.us_unfused, 1) << " unfused ("
              << metrics::Table::fmt(op.speedup, 2) << "x)\n";
  };
  show_op("linear_tanh       ", fused.linear_tanh);
  show_op("gather_add_tanh   ", fused.gather_add_tanh);
  show_op("masked_logprob_sum", fused.masked_logprob_sum);

  const auto train = bench_train(level, tiny, args.seed);
  std::cout << "  train   " << train.epochs << " epochs, "
            << metrics::Table::fmt(train.epoch_seconds * 1e3, 1) << " ms/epoch; arena "
            << train.arena.acquires << " acquires, reuse rate "
            << metrics::Table::pct(train.arena_reuse_rate) << ", high water "
            << train.arena.high_water_bytes / 1024 << " KiB; " << train.dedup_hits
            << " dedup hits\n";

  const auto ab = bench_ab(level, policy, tiny, args.seed);
  std::cout << "  ab      sampling+greedy pass: optimized "
            << metrics::Table::fmt(ab.seconds_optimized * 1e3, 2) << " ms vs baseline "
            << metrics::Table::fmt(ab.seconds_baseline * 1e3, 2) << " ms ("
            << metrics::Table::fmt(ab.speedup, 2) << "x)\n";

  const auto simd = bench_simd(level, policy, tiny);
  const auto show_kernel = [](const char* name, const KernelAb& kr) {
    std::cout << "  simd    " << name << ": " << metrics::Table::fmt(kr.gflops_simd, 1)
              << " GF/s vs scalar " << metrics::Table::fmt(kr.gflops_scalar, 1) << " ("
              << metrics::Table::fmt(kr.speedup, 2) << "x)\n";
  };
  std::cout << "  simd    dispatch tier " << simd.tier << ", pool "
            << ThreadPool::global().size() << " threads\n";
  show_kernel("gemm_nn", simd.gemm_nn);
  show_kernel("gemm_nt", simd.gemm_nt);
  show_kernel("gemm_tn", simd.gemm_tn);
  std::cout << "  simd    e2e forward+backward: " << metrics::Table::fmt(simd.seconds_simd * 1e3, 2)
            << " ms vs scalar " << metrics::Table::fmt(simd.seconds_scalar * 1e3, 2)
            << " ms (" << metrics::Table::fmt(simd.speedup, 2) << "x)\n";

  std::ofstream os(out);
  SC_CHECK(os.good(), "cannot open output file '" << out << "'");
  os << "{\n"
     << "  \"schema_version\": 1,\n"
     << "  \"tiny\": " << (tiny ? "true" : "false") << ",\n"
     << "  \"seed\": " << args.seed << ",\n"
     << "  \"threads\": " << ThreadPool::global().size() << ",\n"
     << "  \"forwards_per_sec_batched\": " << json_num(fwd.forwards_per_sec_batched)
     << ",\n"
     << "  \"forwards_per_sec_per_graph\": " << json_num(fwd.forwards_per_sec_per_graph)
     << ",\n"
     << "  \"speedup\": " << json_num(ab.speedup) << ",\n"
     << "  \"forward\": {\n"
     << "    \"graphs\": " << fwd.graphs << ",\n"
     << "    \"packed_nodes\": " << level.batched.node_offset.back() << ",\n"
     << "    \"packed_edges\": " << level.batched.edge_offset.back() << ",\n"
     << "    \"forwards_per_sec_batched\": " << json_num(fwd.forwards_per_sec_batched)
     << ",\n"
     << "    \"forwards_per_sec_per_graph\": "
     << json_num(fwd.forwards_per_sec_per_graph) << ",\n"
     << "    \"speedup\": " << json_num(fwd.speedup) << "\n  },\n"
     << "  \"fused\": {\n";
  const auto op_json = [&os](const char* name, const FusedOpResult& op, bool last) {
    os << "    \"" << name << "\": { \"us_fused\": " << json_num(op.us_fused)
       << ", \"us_unfused\": " << json_num(op.us_unfused)
       << ", \"speedup\": " << json_num(op.speedup) << " }" << (last ? "\n" : ",\n");
  };
  op_json("linear_tanh", fused.linear_tanh, false);
  op_json("gather_add_tanh", fused.gather_add_tanh, false);
  op_json("masked_logprob_sum", fused.masked_logprob_sum, true);
  os << "  },\n"
     << "  \"train\": {\n"
     << "    \"epochs\": " << train.epochs << ",\n"
     << "    \"seconds\": " << json_num(train.seconds) << ",\n"
     << "    \"epoch_seconds\": " << json_num(train.epoch_seconds) << ",\n"
     << "    \"dedup_hits\": " << train.dedup_hits << "\n  },\n"
     << "  \"arena\": {\n"
     << "    \"acquires\": " << train.arena.acquires << ",\n"
     << "    \"reuses\": " << train.arena.reuses << ",\n"
     << "    \"fresh_allocs\": " << train.arena.fresh_allocs << ",\n"
     << "    \"reuse_rate\": " << json_num(train.arena_reuse_rate) << ",\n"
     << "    \"pooled_nodes\": " << train.arena.pooled_nodes << ",\n"
     << "    \"pooled_bytes\": " << train.arena.pooled_bytes << ",\n"
     << "    \"high_water_bytes\": " << train.arena.high_water_bytes << "\n  },\n"
     << "  \"ab\": {\n"
     << "    \"samples_per_graph\": 3,\n"
     << "    \"seconds_optimized\": " << json_num(ab.seconds_optimized) << ",\n"
     << "    \"seconds_baseline\": " << json_num(ab.seconds_baseline) << ",\n"
     << "    \"passes_per_sec_optimized\": " << json_num(ab.passes_per_sec_optimized)
     << ",\n"
     << "    \"passes_per_sec_baseline\": " << json_num(ab.passes_per_sec_baseline)
     << ",\n"
     << "    \"speedup\": " << json_num(ab.speedup) << "\n  },\n"
     << "  \"simd\": {\n"
     << "    \"tier\": \"" << simd.tier << "\",\n";
  const auto kernel_json = [&os](const char* name, const KernelAb& kr) {
    os << "    \"" << name << "\": { \"gflops_simd\": " << json_num(kr.gflops_simd)
       << ", \"gflops_scalar\": " << json_num(kr.gflops_scalar)
       << ", \"speedup\": " << json_num(kr.speedup) << " },\n";
  };
  kernel_json("gemm_nn", simd.gemm_nn);
  kernel_json("gemm_nt", simd.gemm_nt);
  kernel_json("gemm_tn", simd.gemm_tn);
  os << "    \"e2e\": { \"seconds_simd\": " << json_num(simd.seconds_simd)
     << ", \"seconds_scalar\": " << json_num(simd.seconds_scalar)
     << ", \"speedup\": " << json_num(simd.speedup) << " }\n  },\n"
     << "  \"env\": {\n"
     << "    \"threads\": " << ThreadPool::global().size() << ",\n"
     << "    \"hardware_concurrency\": " << std::thread::hardware_concurrency() << ",\n"
     << "    \"simd_tier\": \"" << nn::simd::tier_name(nn::simd::active()) << "\",\n"
     << "    \"simd_detected\": \"" << nn::simd::tier_name(nn::simd::detect()) << "\"\n"
     << "  }\n"
     << "}\n";
  os.flush();
  SC_CHECK(os.good(), "JSON write to '" << out << "' failed (disk full or I/O error?)");
  os.close();
  std::cout << "JSON written to " << out << "\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "bench_perf_policy: " << e.what() << '\n';
  return 1;
}
