// Figure 5 — throughput CDFs on medium graphs (100-200 nodes) across all
// methods and two cluster settings: (5K/s, 5 devices) and (10K/s, 10 devices).
// Expected ordering: Coarsen+X > Metis > all direct learning baselines.
#include <iostream>
#include "bench_common.hpp"

namespace {

void run_setting(sc::gen::Setting setting, const sc::bench::BenchArgs& args,
                 std::uint64_t seed, const std::string& csv) {
  using namespace sc;
  const auto ds = gen::make_dataset(setting, args.n(24), args.n(24), seed);
  const auto spec = rl::to_cluster_spec(ds.config.workload);
  const std::size_t fw_epochs = args.epochs(16);
  const std::size_t bl_epochs = args.epochs(6);

  // The paper's framework (Coarsen+Metis and Coarsen+Graph-enc-dec).
  auto framework = bench::train_framework(ds.train, spec, fw_epochs, seed + 1);

  // Direct-placement baselines.
  baselines::GraphEncDecConfig ged_cfg;
  ged_cfg.seed = seed + 2;
  baselines::GraphEncDec ged(ged_cfg);
  bench::train_direct(ged, ds.train, spec, bl_epochs, seed + 3);

  baselines::GdpConfig gdp_cfg;
  gdp_cfg.seed = seed + 4;
  baselines::Gdp gdp(gdp_cfg);
  bench::train_direct(gdp, ds.train, spec, bl_epochs, seed + 5);

  baselines::HierarchicalConfig hier_cfg;
  hier_cfg.seed = seed + 6;
  baselines::Hierarchical hier(hier_cfg);
  bench::train_direct(hier, ds.train, spec, bl_epochs, seed + 7);

  const auto contexts = rl::make_contexts(ds.test, spec);
  const core::MetisAllocator metis;
  const core::DirectModelAllocator ged_alloc(ged);
  const core::DirectModelAllocator gdp_alloc(gdp);
  const core::DirectModelAllocator hier_alloc(hier);
  const core::CoarsenAllocator coarsen_metis(framework.policy(), framework.placer(),
                                             "Coarsen+Metis");
  const core::CoarsenAllocator coarsen_ged(framework.policy(),
                                           baselines::learned_placer(ged),
                                           "Coarsen+Graph-enc-dec");

  bench::compare(
      {&metis, &ged_alloc, &gdp_alloc, &hier_alloc, &coarsen_metis, &coarsen_ged},
      contexts, std::string("Medium graphs, ") + gen::setting_name(setting), csv);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sc;
  const auto args = bench::BenchArgs::parse(argc, argv);
  std::cout << "[Figure 5] All methods on medium graphs, two cluster settings\n";
  run_setting(gen::Setting::MediumSmallCluster, args, args.seed,
              args.csv_dir + "/fig5_5k5dev.csv");
  run_setting(gen::Setting::Medium, args, args.seed + 100,
              args.csv_dir + "/fig5_10k10dev.csv");
  std::cout << "\nExpected shape (paper Fig. 5): Metis beats the neural direct\n"
               "baselines at this size; Coarsen+Metis / Coarsen+Graph-enc-dec beat\n"
               "everything, with little difference between the two placers.\n";
  return 0;
}
