// Table III — average inference time per graph for each method on medium
// (100-200 node) and large (400-500 node) graphs, measured with
// google-benchmark. Model weights are untrained (timing is weight-agnostic).
// Expected shape: Metis fastest by orders of magnitude; Coarsen+Metis and
// Hierarchical in the middle; the sequential seq2seq models (Graph-enc-dec,
// GDP) slowest and scaling worst with node count.
#include <benchmark/benchmark.h>

#include <memory>

#include "baselines/gdp.hpp"
#include "baselines/graph_enc_dec.hpp"
#include "baselines/hierarchical.hpp"
#include "core/allocator.hpp"
#include "core/framework.hpp"
#include "gen/dataset.hpp"
#include "rl/rollout.hpp"

namespace {

using namespace sc;

struct Fixture {
  // Datasets must outlive the contexts (GraphContext borrows the graphs).
  gen::Dataset medium_ds;
  gen::Dataset large_ds;
  std::vector<rl::GraphContext> medium;
  std::vector<rl::GraphContext> large;
  std::unique_ptr<core::CoarsenPartitionFramework> framework;
  std::unique_ptr<baselines::GraphEncDec> ged;
  std::unique_ptr<baselines::Gdp> gdp;
  std::unique_ptr<baselines::Hierarchical> hier;

  std::unique_ptr<core::MetisAllocator> metis;
  std::unique_ptr<core::CoarsenAllocator> coarsen;
  std::unique_ptr<core::DirectModelAllocator> ged_alloc;
  std::unique_ptr<core::DirectModelAllocator> gdp_alloc;
  std::unique_ptr<core::DirectModelAllocator> hier_alloc;

  static Fixture& instance() {
    static Fixture f;
    return f;
  }

private:
  Fixture() {
    const std::uint64_t seed = 123;
    medium_ds = gen::make_dataset(gen::Setting::Medium, 0, 8, seed);
    medium = rl::make_contexts(medium_ds.test,
                               rl::to_cluster_spec(medium_ds.config.workload));
    large_ds = gen::make_dataset(gen::Setting::Large, 0, 8, seed + 1);
    large = rl::make_contexts(large_ds.test,
                              rl::to_cluster_spec(large_ds.config.workload));
    framework = std::make_unique<core::CoarsenPartitionFramework>();
    ged = std::make_unique<baselines::GraphEncDec>(baselines::GraphEncDecConfig{});
    gdp = std::make_unique<baselines::Gdp>(baselines::GdpConfig{});
    hier = std::make_unique<baselines::Hierarchical>(baselines::HierarchicalConfig{});

    metis = std::make_unique<core::MetisAllocator>();
    coarsen = std::make_unique<core::CoarsenAllocator>(framework->policy(),
                                                       framework->placer(),
                                                       "Coarsen+Metis");
    ged_alloc = std::make_unique<core::DirectModelAllocator>(*ged);
    gdp_alloc = std::make_unique<core::DirectModelAllocator>(*gdp);
    hier_alloc = std::make_unique<core::DirectModelAllocator>(*hier);
  }
};

void run_allocator(benchmark::State& state, const core::Allocator& alloc,
                   const std::vector<rl::GraphContext>& contexts) {
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(alloc.allocate(contexts[i % contexts.size()]));
    ++i;
  }
  state.SetLabel("per-graph inference");
}

#define SC_BENCH(method, field)                                                   \
  void BM_##method##_Medium(benchmark::State& s) {                                \
    run_allocator(s, *Fixture::instance().field, Fixture::instance().medium);     \
  }                                                                               \
  BENCHMARK(BM_##method##_Medium)->Unit(benchmark::kMillisecond);                 \
  void BM_##method##_Large(benchmark::State& s) {                                 \
    run_allocator(s, *Fixture::instance().field, Fixture::instance().large);      \
  }                                                                               \
  BENCHMARK(BM_##method##_Large)->Unit(benchmark::kMillisecond);

SC_BENCH(CoarsenMetis, coarsen)
SC_BENCH(Metis, metis)
SC_BENCH(Hierarchical, hier_alloc)
SC_BENCH(GDP, gdp_alloc)
SC_BENCH(GraphEncDec, ged_alloc)

}  // namespace

BENCHMARK_MAIN();
