// Shared infrastructure for the paper-reproduction benches.
//
// Every bench accepts:
//   --scale <f>     multiplies dataset sizes (default 1.0; paper scale ~10-50)
//   --epochs <n>    overrides the per-bench default training epochs
//   --seed <n>      master seed
//   --csv <dir>     where to drop CSV dumps (default: current directory)
//   --threads <n>   size of the global thread pool (0 = hardware concurrency)
// The defaults are sized so the full bench suite completes in minutes on a
// laptop while still reproducing the paper's qualitative shape. EXPERIMENTS.md
// records the scale used for the committed results.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "baselines/gdp.hpp"
#include "baselines/graph_enc_dec.hpp"
#include "baselines/hierarchical.hpp"
#include "baselines/trainer.hpp"
#include "common/flags.hpp"
#include "common/log.hpp"
#include "core/allocator.hpp"
#include "core/framework.hpp"
#include "gen/dataset.hpp"
#include "metrics/report.hpp"
#include "rl/rollout.hpp"

namespace sc::bench {

struct BenchArgs {
  double scale = 1.0;
  long epochs_override = -1;
  std::uint64_t seed = 42;
  std::string csv_dir = ".";
  bool verbose = false;
  std::size_t threads = 0;

  static BenchArgs parse(int argc, char** argv) {
    const Flags flags(argc, argv);
    BenchArgs a;
    a.scale = flags.get_double("scale", 1.0);
    a.epochs_override = flags.get_int("epochs", -1);
    a.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
    a.csv_dir = flags.get_string("csv", ".");
    a.verbose = flags.get_bool("verbose", false);
    a.threads = configure_threads_from_flags(flags);
    if (!a.verbose) logging::set_level(LogLevel::Warn);
    return a;
  }

  std::size_t n(std::size_t base) const {
    const auto scaled = static_cast<std::size_t>(static_cast<double>(base) * scale);
    return scaled < 2 ? 2 : scaled;
  }
  std::size_t epochs(std::size_t base) const {
    return epochs_override > 0 ? static_cast<std::size_t>(epochs_override) : base;
  }
};

/// Trains the coarsening framework on a setting with Metis guidance.
inline core::CoarsenPartitionFramework train_framework(
    const std::vector<graph::StreamGraph>& graphs, const sim::ClusterSpec& spec,
    std::size_t epochs, std::uint64_t seed,
    core::PlacerKind placer = core::PlacerKind::Metis,
    bool edge_encoding = true, bool edge_collapsing = true) {
  core::FrameworkOptions options;
  options.trainer.metis_guidance = true;
  options.trainer.seed = seed;
  options.policy.seed = seed * 7919 + 13;
  options.policy.encoder.use_edge_features = edge_encoding;
  options.policy.scorer.use_edge_features = edge_collapsing;
  options.placer = placer;
  core::CoarsenPartitionFramework framework(options);
  framework.train(graphs, spec, epochs);
  return framework;
}

/// Trains a direct-placement baseline.
template <typename Model>
void train_direct(Model& model, const std::vector<graph::StreamGraph>& graphs,
                  const sim::ClusterSpec& spec, std::size_t epochs, std::uint64_t seed) {
  auto contexts = rl::make_contexts(graphs, spec);
  baselines::DirectTrainerConfig cfg;
  cfg.seed = seed;
  baselines::DirectTrainer trainer(model, contexts, cfg);
  for (std::size_t e = 0; e < epochs; ++e) trainer.train_epoch();
}

inline metrics::Series to_series(const core::EvalResult& r) {
  return metrics::Series{r.name, r.throughput};
}

/// Evaluates a list of allocators over one context set and prints the
/// comparison to stdout; returns the series for further reporting. Defined
/// in bench_common.cpp (stream output is kept out of headers).
std::vector<metrics::Series> compare(const std::vector<const core::Allocator*>& allocators,
                                     const std::vector<rl::GraphContext>& contexts,
                                     const std::string& title,
                                     const std::string& csv_path = {});

}  // namespace sc::bench
