// Figure 7 — the excess-device setting: CPU demand and bandwidth reduced by
// 33%, so optimal allocations use a subset of the devices.
//   (a) throughput CDFs: Metis, Metis-oracle, baselines, Coarsen variants
//   (b) device-usage histograms and utilization statistics
#include <iostream>
#include "bench_common.hpp"

#include "nn/serialize.hpp"

int main(int argc, char** argv) {
  using namespace sc;
  const auto args = bench::BenchArgs::parse(argc, argv);
  ThreadPool& pool = ThreadPool::global();
  std::cout << "[Figure 7] Excess-device setting (CPU and bandwidth -33%)\n";

  // Train on the regular medium setting, as the paper does (transfer into
  // the excess setting is part of the experiment).
  const auto medium =
      gen::make_dataset(gen::Setting::Medium, args.n(24), args.n(4), args.seed);
  const auto medium_spec = rl::to_cluster_spec(medium.config.workload);
  auto medium_fw =
      bench::train_framework(medium.train, medium_spec, args.epochs(16), args.seed + 1);

  baselines::GraphEncDecConfig ged_cfg;
  ged_cfg.seed = args.seed + 2;
  baselines::GraphEncDec ged(ged_cfg);
  bench::train_direct(ged, medium.train, medium_spec, args.epochs(6), args.seed + 3);

  // Evaluate on the excess setting.
  const auto excess =
      gen::make_dataset(gen::Setting::Excess, args.n(8), args.n(10), args.seed + 4);
  const auto excess_spec = rl::to_cluster_spec(excess.config.workload);
  const auto contexts = rl::make_contexts(excess.test, excess_spec);

  // Fine-tuned variant: adapt the medium policy to the excess distribution.
  core::FrameworkOptions ft_opts;
  ft_opts.trainer.metis_guidance = true;
  ft_opts.trainer.seed = args.seed + 5;
  ft_opts.placer = core::PlacerKind::MetisOracle;
  core::CoarsenPartitionFramework finetuned(ft_opts);
  nn::copy_parameters(medium_fw.policy().parameters(), finetuned.policy().parameters());
  finetuned.train(excess.train, excess_spec, args.epochs(6));

  const core::MetisAllocator metis;
  const core::MetisOracleAllocator metis_oracle;
  const core::DirectModelAllocator ged_alloc(ged);
  const core::CoarsenAllocator zero_shot(medium_fw.policy(), medium_fw.placer(),
                                         "Coarsen+Metis (no fine-tune)");
  const core::CoarsenAllocator tuned(finetuned.policy(), finetuned.placer(),
                                     "Coarsen+Metis-oracle (+fine-tune)");

  const auto m_eval = core::evaluate_allocator(metis, contexts, &pool);
  const auto o_eval = core::evaluate_allocator(metis_oracle, contexts, &pool);
  const auto g_eval = core::evaluate_allocator(ged_alloc, contexts, &pool);
  const auto z_eval = core::evaluate_allocator(zero_shot, contexts, &pool);
  const auto t_eval = core::evaluate_allocator(tuned, contexts, &pool);

  std::vector<metrics::Series> series{bench::to_series(m_eval), bench::to_series(o_eval),
                                      bench::to_series(g_eval), bench::to_series(z_eval),
                                      bench::to_series(t_eval)};
  std::cout << "\n=== (a) Throughput CDFs ===\n";
  metrics::print_cdf_comparison(std::cout, series);
  metrics::print_auc_table(std::cout, series);
  metrics::write_series_csv(args.csv_dir + "/fig7a.csv", series);

  // ---- (b) device-usage histograms + utilization ------------------------------
  const auto usage_of = [](const core::EvalResult& r) {
    std::vector<double> used;
    for (const auto& p : r.placements) {
      used.push_back(static_cast<double>(sim::devices_used(p)));
    }
    return used;
  };
  const double d = static_cast<double>(excess_spec.num_devices);
  std::cout << "\n=== (b) Devices used ===\n";
  metrics::print_histogram(
      std::cout, metrics::histogram(usage_of(o_eval), 0.5, d + 0.5, excess_spec.num_devices),
      "Metis-oracle:");
  metrics::print_histogram(
      std::cout, metrics::histogram(usage_of(t_eval), 0.5, d + 0.5, excess_spec.num_devices),
      "Coarsen+Metis-oracle (+fine-tune):");
  metrics::print_histogram(
      std::cout, metrics::histogram(usage_of(z_eval), 0.5, d + 0.5, excess_spec.num_devices),
      "Coarsen+Metis (no fine-tune, tends to over-use devices):");

  const auto util_stats = [&](const core::EvalResult& r) {
    std::vector<double> cpu, bw;
    for (std::size_t i = 0; i < contexts.size(); ++i) {
      const auto rep = contexts[i].simulator.report(r.placements[i]);
      cpu.push_back(rep.avg_cpu_utilization);
      bw.push_back(rep.avg_bw_utilization);
    }
    const auto c = metrics::mean_std(cpu);
    const auto b = metrics::mean_std(bw);
    std::cout << "  " << r.name << ": device util " << metrics::Table::fmt(c.mean, 2)
              << " (" << metrics::Table::fmt(c.stddev, 2) << "), bandwidth util "
              << metrics::Table::fmt(b.mean, 2) << " (" << metrics::Table::fmt(b.stddev, 2)
              << ")\n";
  };
  std::cout << "\nUtilization of used resources (mean (stddev)):\n";
  util_stats(o_eval);
  util_stats(t_eval);

  std::cout << "\nExpected shape (paper Fig. 7): fine-tuned Coarsen beats even\n"
               "Metis-oracle; the no-fine-tune variant beats the baselines but uses\n"
               "more devices than necessary; our utilization mean/stddev are lower\n"
               "than Metis-oracle's (better balancing).\n";
  return 0;
}
