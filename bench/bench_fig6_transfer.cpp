// Figure 6 — generalizability: models trained on smaller graphs evaluated on
// larger ones, plus the curriculum ablation.
//   (a) train on 100-200 nodes, evaluate on 400-500 (all methods)
//   (b) curriculum ablation on 400-500: from-scratch vs from-scratch+Metis
//       samples vs zero-shot transfer vs transfer+fine-tune
//   (c) train on 400-500, evaluate on 1000-2000 (zero-shot vs fine-tuned)
#include <iostream>
#include "bench_common.hpp"

#include "nn/serialize.hpp"

int main(int argc, char** argv) {
  using namespace sc;
  const auto args = bench::BenchArgs::parse(argc, argv);
  std::cout << "[Figure 6] Transfer from smaller to larger graphs\n";

  const core::MetisAllocator metis;

  // ---- Common data ------------------------------------------------------------
  const auto medium =
      gen::make_dataset(gen::Setting::Medium, args.n(24), args.n(12), args.seed);
  const auto medium_spec = rl::to_cluster_spec(medium.config.workload);
  const auto large =
      gen::make_dataset(gen::Setting::Large, args.n(10), args.n(10), args.seed + 1);
  const auto large_spec = rl::to_cluster_spec(large.config.workload);
  const auto large_contexts = rl::make_contexts(large.test, large_spec);

  // ---- Train everything on MEDIUM ------------------------------------------------
  auto medium_fw =
      bench::train_framework(medium.train, medium_spec, args.epochs(16), args.seed + 2);

  baselines::GraphEncDecConfig ged_cfg;
  ged_cfg.seed = args.seed + 3;
  baselines::GraphEncDec ged(ged_cfg);
  bench::train_direct(ged, medium.train, medium_spec, args.epochs(6), args.seed + 4);

  baselines::GdpConfig gdp_cfg;
  gdp_cfg.seed = args.seed + 5;
  baselines::Gdp gdp(gdp_cfg);
  bench::train_direct(gdp, medium.train, medium_spec, args.epochs(6), args.seed + 6);

  baselines::HierarchicalConfig hier_cfg;
  hier_cfg.seed = args.seed + 7;
  baselines::Hierarchical hier(hier_cfg);
  bench::train_direct(hier, medium.train, medium_spec, args.epochs(6), args.seed + 8);

  // ---- (a) medium-trained methods evaluated on LARGE --------------------------
  {
    const core::DirectModelAllocator ged_a(ged);
    const core::DirectModelAllocator gdp_a(gdp);
    const core::DirectModelAllocator hier_a(hier);
    const core::CoarsenAllocator ours(medium_fw.policy(), medium_fw.placer(),
                                      "Coarsen+Metis (transfer)");
    bench::compare({&metis, &ged_a, &gdp_a, &hier_a, &ours}, large_contexts,
                   "(a) trained on 100-200, evaluated on 400-500 nodes",
                   args.csv_dir + "/fig6a.csv");
  }

  // ---- (b) curriculum ablation on LARGE ----------------------------------------
  {
    // From scratch without any guidance.
    core::FrameworkOptions scratch_opts;
    scratch_opts.trainer.metis_guidance = false;
    scratch_opts.trainer.seed = args.seed + 9;
    core::CoarsenPartitionFramework scratch(scratch_opts);
    scratch.train(large.train, large_spec, args.epochs(6));

    // From scratch with Metis-guided samples.
    auto scratch_guided = bench::train_framework(large.train, large_spec,
                                                 args.epochs(6), args.seed + 10);

    // Transfer + fine-tune (the curriculum).
    core::FrameworkOptions ft_opts;
    ft_opts.trainer.metis_guidance = true;
    ft_opts.trainer.seed = args.seed + 11;
    core::CoarsenPartitionFramework finetuned(ft_opts);
    nn::copy_parameters(medium_fw.policy().parameters(),
                        finetuned.policy().parameters());
    finetuned.train(large.train, large_spec, args.epochs(6));

    const core::CoarsenAllocator a_scratch(scratch.policy(), scratch.placer(),
                                           "Coarsen-Fromscratch");
    const core::CoarsenAllocator a_guided(scratch_guided.policy(),
                                          scratch_guided.placer(),
                                          "Coarsen-Fromscratch+Metis-sample");
    const core::CoarsenAllocator a_zero(medium_fw.policy(), medium_fw.placer(),
                                        "Coarsen (zero-shot transfer)");
    const core::CoarsenAllocator a_ft(finetuned.policy(), finetuned.placer(),
                                      "Coarsen (+curriculum fine-tune)");
    bench::compare({&metis, &a_scratch, &a_guided, &a_zero, &a_ft}, large_contexts,
                   "(b) curriculum ablation on 400-500 nodes",
                   args.csv_dir + "/fig6b.csv");

    // ---- (c) large-trained policy on XLARGE ------------------------------------
    const auto xlarge =
        gen::make_dataset(gen::Setting::XLarge, args.n(4), args.n(4), args.seed + 12);
    const auto xl_spec = rl::to_cluster_spec(xlarge.config.workload);
    const auto xl_contexts = rl::make_contexts(xlarge.test, xl_spec);

    core::FrameworkOptions xl_opts = ft_opts;
    xl_opts.trainer.seed = args.seed + 13;
    core::CoarsenPartitionFramework xl_ft(xl_opts);
    nn::copy_parameters(finetuned.policy().parameters(), xl_ft.policy().parameters());
    xl_ft.train(xlarge.train, xl_spec, args.epochs(3));

    const core::CoarsenAllocator a_xzero(finetuned.policy(), finetuned.placer(),
                                         "Coarsen (zero-shot transfer)");
    const core::CoarsenAllocator a_xft(xl_ft.policy(), xl_ft.placer(),
                                       "Coarsen (+curriculum fine-tune)");
    bench::compare({&metis, &a_xzero, &a_xft}, xl_contexts,
                   "(c) trained on 400-500, evaluated on 1000-2000 nodes",
                   args.csv_dir + "/fig6c.csv");
  }

  std::cout << "\nExpected shape (paper Fig. 6): direct baselines degrade badly on\n"
               "larger unseen graphs; zero-shot Coarsen transfer already beats Metis;\n"
               "curriculum fine-tuning adds a further boost.\n";
  return 0;
}
