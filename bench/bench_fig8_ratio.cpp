// Figure 8 — throughput vs compression ratio: box plots of throughput for
// Metis and Coarsen+Metis over buckets of the achieved compression ratio
// (bucket edges chosen so each holds about the same number of graphs).
// Expected shape: the coarsening model's advantage concentrates on graphs
// it compresses ~4x or more.
#include <iostream>
#include <algorithm>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sc;
  const auto args = bench::BenchArgs::parse(argc, argv);
  ThreadPool& pool = ThreadPool::global();
  std::cout << "[Figure 8] Throughput vs compression ratio\n";

  const auto ds =
      gen::make_dataset(gen::Setting::Medium, args.n(24), args.n(40), args.seed);
  const auto spec = rl::to_cluster_spec(ds.config.workload);
  auto framework =
      bench::train_framework(ds.train, spec, args.epochs(16), args.seed + 1);

  const auto contexts = rl::make_contexts(ds.test, spec);
  const core::MetisAllocator metis;
  const core::CoarsenAllocator ours(framework.policy(), framework.placer(),
                                    "Coarsen+Metis");
  const auto m_eval = core::evaluate_allocator(metis, contexts, &pool);
  const auto c_eval = core::evaluate_allocator(ours, contexts, &pool);

  // Compression ratio achieved by the greedy policy on each test graph.
  std::vector<double> ratio(contexts.size());
  {
    nn::NoGradGuard no_grad;
    for (std::size_t i = 0; i < contexts.size(); ++i) {
      const auto logits = framework.policy().logits(contexts[i].features);
      const auto mask = framework.policy().greedy(logits.value());
      ratio[i] = gnn::CoarseningPolicy::apply(*contexts[i].graph, contexts[i].profile, mask)
                     .compression_ratio();
    }
  }

  // Equal-count buckets over the ratio distribution (paper's bucketing rule).
  const std::size_t buckets = 4;
  std::vector<std::size_t> order(contexts.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return ratio[a] < ratio[b]; });

  metrics::Table t({"ratio bucket", "n", "Metis med [q1,q3]", "Coarsen med [q1,q3]",
                    "median gain"});
  for (std::size_t b = 0; b < buckets; ++b) {
    const std::size_t lo = b * order.size() / buckets;
    const std::size_t hi = (b + 1) * order.size() / buckets;
    if (hi <= lo) continue;
    std::vector<double> m_vals, c_vals;
    for (std::size_t k = lo; k < hi; ++k) {
      m_vals.push_back(m_eval.throughput[order[k]]);
      c_vals.push_back(c_eval.throughput[order[k]]);
    }
    const auto ms = metrics::box_stats(m_vals);
    const auto cs = metrics::box_stats(c_vals);
    const std::string bucket_label =
        metrics::Table::fmt(ratio[order[lo]], 3) + "x - " +
        metrics::Table::fmt(ratio[order[hi - 1]], 3) + "x";
    t.add_row({bucket_label, std::to_string(hi - lo),
               metrics::Table::fmt(ms.median, 0) + " [" + metrics::Table::fmt(ms.q1, 0) +
                   "," + metrics::Table::fmt(ms.q3, 0) + "]",
               metrics::Table::fmt(cs.median, 0) + " [" + metrics::Table::fmt(cs.q1, 0) +
                   "," + metrics::Table::fmt(cs.q3, 0) + "]",
               metrics::Table::pct(ms.median > 0 ? (cs.median - ms.median) / ms.median
                                                 : 0.0)});
  }
  std::cout << '\n';
  t.print(std::cout);

  metrics::write_series_csv(args.csv_dir + "/fig8.csv",
                            {{"ratio", ratio},
                             {"metis", m_eval.throughput},
                             {"coarsen", c_eval.throughput}});
  std::cout << "\nExpected shape (paper Fig. 8): the Coarsen advantage grows with the\n"
               "compression ratio; heavily compressible graphs benefit the most.\n";
  return 0;
}
