// Simulator-fidelity bench (extension): the paper's reward oracle (CEPSim)
// was validated by showing *relative ranks* of allocations agree with a real
// streaming platform. We reproduce that protocol with our two simulators:
// the analytic fluid model is the training oracle, the tick-level event
// simulator (bounded queues, backpressure) stands in for the real platform.
//
// Reported:
//   1. per-placement relative error between the two simulators;
//   2. pairwise rank agreement across candidate placements per graph;
//   3. whether method ordering (Metis vs Coarsen+Metis) is preserved when
//      re-measured on the event simulator — the paper's sim-to-real claim;
//   4. throughput/latency trade-off of the final allocations.
#include <iostream>
#include <algorithm>

#include "bench_common.hpp"

#include "sim/event.hpp"

int main(int argc, char** argv) {
  using namespace sc;
  const auto args = bench::BenchArgs::parse(argc, argv);
  ThreadPool& pool = ThreadPool::global();
  std::cout << "[Sim2Real] Fluid (training oracle) vs event simulator (platform)\n";

  const auto ds =
      gen::make_dataset(gen::Setting::Small, args.n(16), args.n(16), args.seed);
  gen::GeneratorConfig cfg = ds.config;
  const auto spec = rl::to_cluster_spec(cfg.workload);

  auto framework = bench::train_framework(ds.train, spec, args.epochs(10), args.seed + 1);

  const auto contexts = rl::make_contexts(ds.test, spec);
  const core::MetisAllocator metis;
  const core::CoarsenAllocator ours(framework.policy(), framework.placer(),
                                    "Coarsen+Metis");

  const auto m_eval = core::evaluate_allocator(metis, contexts, &pool);
  const auto c_eval = core::evaluate_allocator(ours, contexts, &pool);

  // ---- (1) + (2): per-graph candidate placements under both simulators -----
  double abs_err_sum = 0.0;
  std::size_t agree = 0, pairs = 0, samples = 0;
  Rng rng(args.seed + 2);
  std::vector<double> fluid_r, event_r;
  for (std::size_t gi = 0; gi < contexts.size(); ++gi) {
    const auto& ctx = contexts[gi];
    sim::EventSimConfig ecfg;
    const sim::EventSimulator esim(*ctx.graph, ctx.simulator.spec(), ecfg);

    std::vector<sim::Placement> candidates;
    candidates.push_back(m_eval.placements[gi]);
    candidates.push_back(sim::all_on_one(*ctx.graph));
    candidates.push_back(sim::round_robin(*ctx.graph, spec.num_devices));
    for (int t = 0; t < 2; ++t) {
      sim::Placement p(ctx.graph->num_nodes());
      for (auto& d : p) d = static_cast<int>(rng.index(spec.num_devices));
      candidates.push_back(std::move(p));
    }

    std::vector<double> f(candidates.size()), e(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      f[i] = ctx.simulator.relative_throughput(candidates[i]);
      e[i] = esim.relative_throughput(candidates[i]);
      abs_err_sum += std::abs(f[i] - e[i]);
      fluid_r.push_back(f[i]);
      event_r.push_back(e[i]);
    }
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      for (std::size_t j = i + 1; j < candidates.size(); ++j) {
        if (std::abs(f[i] - f[j]) < 0.02) continue;  // ties don't count
        ++pairs;
        if ((f[i] < f[j]) == (e[i] < e[j])) ++agree;
      }
    }
    samples += candidates.size();
  }
  std::cout << "\nMean |fluid - event| relative-throughput error: "
            << metrics::Table::fmt(abs_err_sum / static_cast<double>(samples), 4)
            << " over " << samples << " placements\n";
  std::cout << "Pairwise rank agreement: " << agree << "/" << pairs << " ("
            << metrics::Table::pct(pairs ? static_cast<double>(agree) /
                                               static_cast<double>(pairs)
                                         : 1.0)
            << "), Kendall tau-b = "
            << metrics::Table::fmt(metrics::kendall_tau(fluid_r, event_r), 3) << '\n';

  // ---- (3): does the method ordering survive re-measurement? ---------------
  std::vector<double> m_event(contexts.size()), c_event(contexts.size());
  pool.parallel_for(contexts.size(), [&](std::size_t i) {
    const sim::EventSimulator esim(*contexts[i].graph, contexts[i].simulator.spec());
    m_event[i] = esim.throughput(m_eval.placements[i]);
    c_event[i] = esim.throughput(c_eval.placements[i]);
  });
  std::cout << "\nMethod comparison re-measured on the event simulator:\n";
  metrics::print_auc_table(std::cout, {{"Metis (event sim)", m_event},
                                       {"Coarsen+Metis (event sim)", c_event}});
  metrics::print_auc_table(std::cout, {{"Metis (fluid)", m_eval.throughput},
                                       {"Coarsen+Metis (fluid)", c_eval.throughput}});

  // ---- (4): throughput/latency trade-off -----------------------------------
  double m_lat = 0.0, c_lat = 0.0;
  for (std::size_t i = 0; i < contexts.size(); ++i) {
    m_lat += contexts[i].simulator.latency(m_eval.placements[i]);
    c_lat += contexts[i].simulator.latency(c_eval.placements[i]);
  }
  const double n = static_cast<double>(contexts.size());
  std::cout << "\nMean end-to-end latency: Metis "
            << metrics::Table::fmt(m_lat / n * 1e3, 2) << " ms vs Coarsen+Metis "
            << metrics::Table::fmt(c_lat / n * 1e3, 2) << " ms\n";

  std::cout << "\nExpected shape: small absolute error, >90% rank agreement, and\n"
               "the Coarsen advantage preserved under the event simulator — the\n"
               "property that justifies training against the cheap fluid oracle.\n";
  return 0;
}
