// bench_perf_train — reward-pipeline performance harness (BENCH_perf_train.json).
//
// Three phases:
//   gemm  : GFLOP/s of the register-blocked GEMM kernels vs the naive
//           reference loops (same shapes, same data).
//   train : real ReinforceTrainer epochs on a generated dataset — reports
//           end-to-end episodes/sec and the epoch cache hit rate.
//   ab    : flag-gated A/B of the reward pipeline (mask -> contract ->
//           partition -> simulate) on a low-entropy mask stream — a
//           converged policy's sampling regime: a per-graph base mask with
//           at most one bit flipped per episode. Optimized arm: episode
//           cache on + blocked kernels enabled. Baseline arm: both disabled.
//           Both arms evaluate an identical pre-generated mask schedule, so
//           the speedup is purely the cache + kernel-config effect. (The
//           actor-side forward pass is covered by the gemm phase and by the
//           end-to-end train phase.)
//
// Usage:
//   bench_perf_train [--tiny] [--out BENCH_perf_train.json] [--seed N]
//                    [--threads N] [--verbose]
//   bench_perf_train --validate <file>   # re-parse an emitted JSON; exits
//                                        # non-zero if malformed (ctest smoke)
#include <iostream>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "bench_common.hpp"
#include "nn/ops.hpp"
#include "rl/episode_cache.hpp"
#include "rl/reinforce.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// ---------------------------------------------------------------------------
// Minimal JSON validation (recursive descent). The smoke test must fail on a
// malformed file without depending on python in the test environment.
// ---------------------------------------------------------------------------
struct JsonParser {
  const std::string& s;
  std::size_t pos = 0;

  explicit JsonParser(const std::string& text) : s(text) {}

  [[noreturn]] void fail(const std::string& what) const {
    throw sc::Error("JSON parse error at byte " + std::to_string(pos) + ": " + what);
  }
  void skip_ws() {
    while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                              s[pos] == '\r')) {
      ++pos;
    }
  }
  char peek() {
    skip_ws();
    if (pos >= s.size()) fail("unexpected end of input");
    return s[pos];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos;
  }
  void parse_string() {
    expect('"');
    while (pos < s.size() && s[pos] != '"') {
      if (s[pos] == '\\') ++pos;  // skip escaped char
      ++pos;
    }
    if (pos >= s.size()) fail("unterminated string");
    ++pos;
  }
  double parse_number() {
    skip_ws();
    const std::size_t start = pos;
    if (pos < s.size() && (s[pos] == '-' || s[pos] == '+')) ++pos;
    while (pos < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[pos])) || s[pos] == '.' ||
            s[pos] == 'e' || s[pos] == 'E' || s[pos] == '-' || s[pos] == '+')) {
      ++pos;
    }
    if (pos == start) fail("expected a number");
    const double v = std::strtod(s.substr(start, pos - start).c_str(), nullptr);
    if (!std::isfinite(v)) fail("non-finite number");
    return v;
  }
  void parse_literal(const char* lit) {
    skip_ws();
    for (const char* p = lit; *p; ++p, ++pos) {
      if (pos >= s.size() || s[pos] != *p) fail(std::string("expected '") + lit + "'");
    }
  }
  void parse_value() {
    const char c = peek();
    if (c == '{') {
      parse_object();
    } else if (c == '[') {
      expect('[');
      if (peek() != ']') {
        parse_value();
        while (peek() == ',') {
          ++pos;
          parse_value();
        }
      }
      expect(']');
    } else if (c == '"') {
      parse_string();
    } else if (c == 't') {
      parse_literal("true");
    } else if (c == 'f') {
      parse_literal("false");
    } else if (c == 'n') {
      parse_literal("null");
    } else {
      (void)parse_number();
    }
  }
  std::vector<std::string> parse_object() {
    std::vector<std::string> keys;
    expect('{');
    if (peek() != '}') {
      for (;;) {
        skip_ws();
        const std::size_t key_start = pos + 1;
        parse_string();
        keys.push_back(s.substr(key_start, pos - key_start - 1));
        expect(':');
        parse_value();
        if (peek() != ',') break;
        ++pos;
      }
    }
    expect('}');
    return keys;
  }
};

int validate_json(const std::string& path) {
  std::ifstream is(path);
  if (!is.good()) {
    std::cerr << "bench_perf_train: cannot open '" << path << "'\n";
    return 1;
  }
  std::stringstream buf;
  buf << is.rdbuf();
  const std::string text = buf.str();
  try {
    JsonParser parser(text);
    const auto keys = parser.parse_object();
    parser.skip_ws();
    if (parser.pos != text.size()) parser.fail("trailing garbage after object");
    for (const char* required :
         {"schema_version", "episodes_per_sec", "episodes_per_sec_baseline",
          "speedup", "cache_hit_rate", "gemm", "train", "ab"}) {
      bool found = false;
      for (const auto& k : keys) found = found || k == required;
      if (!found) throw sc::Error(std::string("missing required key '") + required + "'");
    }
  } catch (const std::exception& e) {
    std::cerr << "bench_perf_train: '" << path << "' is malformed: " << e.what() << '\n';
    return 1;
  }
  std::cout << "OK: " << path << " is well-formed JSON with the expected keys\n";
  return 0;
}

// ---------------------------------------------------------------------------
// Phase 1: GEMM GFLOP/s, blocked vs naive, identical inputs.
// ---------------------------------------------------------------------------
struct GemmResult {
  double gflops_blocked = 0.0;
  double gflops_naive = 0.0;
  std::size_t n = 0, k = 0, m = 0;
};

GemmResult bench_gemm(bool tiny, sc::Rng& rng) {
  using namespace sc::nn;
  GemmResult r;
  r.n = tiny ? 64 : 192;
  r.k = tiny ? 64 : 192;
  r.m = tiny ? 64 : 192;
  std::vector<double> a(r.n * r.k), b(r.k * r.m), c(r.n * r.m);
  for (double& x : a) x = rng.normal();
  for (double& x : b) x = rng.normal();

  const double flops_per_call = 2.0 * static_cast<double>(r.n * r.k * r.m);
  double sink = 0.0;
  const auto time_kernel = [&](auto&& gemm) {
    gemm();  // warm up (and fault in the pages)
    const double min_seconds = tiny ? 0.05 : 0.25;
    std::size_t reps = 0;
    const auto t0 = Clock::now();
    double elapsed = 0.0;
    while (elapsed < min_seconds) {
      gemm();
      ++reps;
      elapsed = seconds_since(t0);
    }
    sink += c[0];
    return flops_per_call * static_cast<double>(reps) / elapsed / 1e9;
  };

  r.gflops_blocked = time_kernel([&] {
    kernels::gemm_nn(a.data(), b.data(), c.data(), r.n, r.k, r.m, false);
  });
  r.gflops_naive = time_kernel([&] {
    kernels::gemm_nn_naive(a.data(), b.data(), c.data(), r.n, r.k, r.m, false);
  });
  if (sink == 42.125) std::cerr << "";  // keep the accumulations alive
  return r;
}

// ---------------------------------------------------------------------------
// Phase 2: real training epochs — end-to-end episodes/sec.
// ---------------------------------------------------------------------------
struct TrainResult {
  std::size_t episodes = 0;
  double seconds = 0.0;
  double episodes_per_sec = 0.0;
  double cache_hit_rate = 0.0;
  std::size_t epochs = 0;
};

TrainResult bench_train(bool tiny, std::uint64_t seed) {
  using namespace sc;
  gen::GeneratorConfig gcfg;
  gcfg.topology.min_nodes = tiny ? 12 : 20;
  gcfg.topology.max_nodes = tiny ? 20 : 40;
  gcfg.workload.num_devices = 4;
  const std::size_t num_graphs = tiny ? 4 : 10;
  const auto graphs = gen::generate_graphs(gcfg, num_graphs, seed);
  auto contexts = rl::make_contexts(graphs, rl::to_cluster_spec(gcfg.workload));

  gnn::PolicyConfig pcfg;
  pcfg.seed = seed * 7919 + 13;
  gnn::CoarseningPolicy policy(pcfg);
  rl::TrainerConfig tcfg;
  tcfg.seed = seed;
  rl::ReinforceTrainer trainer(policy, contexts, rl::metis_placer(), tcfg);

  TrainResult r;
  r.epochs = tiny ? 2 : 8;
  std::uint64_t hits = 0, misses = 0;
  const auto t0 = Clock::now();
  for (std::size_t e = 0; e < r.epochs; ++e) {
    const auto stats = trainer.train_epoch();
    hits += stats.cache_hits;
    misses += stats.cache_misses;
  }
  r.seconds = seconds_since(t0);
  r.episodes = r.epochs * num_graphs * (tcfg.on_policy_samples + 1);
  r.episodes_per_sec = static_cast<double>(r.episodes) / r.seconds;
  r.cache_hit_rate =
      hits + misses == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(hits + misses);
  return r;
}

// ---------------------------------------------------------------------------
// Phase 3: flag-gated A/B on the reward pipeline with low-entropy masks.
// ---------------------------------------------------------------------------
struct AbResult {
  std::size_t episodes = 0;
  double seconds_optimized = 0.0;
  double seconds_baseline = 0.0;
  double episodes_per_sec_optimized = 0.0;
  double episodes_per_sec_baseline = 0.0;
  double speedup = 0.0;
  double cache_hit_rate = 0.0;
};

AbResult bench_ab(bool tiny, std::uint64_t seed) {
  using namespace sc;
  gen::GeneratorConfig gcfg;
  // Mid-size graphs: reward evaluation (contract + multilevel partition +
  // simulate) dominates the per-episode cost, as in the paper's settings.
  gcfg.topology.min_nodes = tiny ? 24 : 60;
  gcfg.topology.max_nodes = tiny ? 40 : 120;
  gcfg.workload.num_devices = tiny ? 4 : 8;
  const std::size_t num_graphs = tiny ? 3 : 6;
  const std::size_t rounds = tiny ? 12 : 80;
  const std::size_t samples_per_round = tiny ? 8 : 12;
  const auto graphs = gen::generate_graphs(gcfg, num_graphs, seed + 101);
  const auto spec = rl::to_cluster_spec(gcfg.workload);
  const auto placer = rl::metis_placer();

  // Pre-generate the mask schedule once so both arms evaluate identical work:
  // per graph, a fixed base mask perturbed by flipping 0-2 random bits per
  // episode — the repeat-heavy distribution a low-entropy (converged) policy
  // samples from.
  auto base_contexts = rl::make_contexts(graphs, spec);
  std::vector<std::vector<gnn::EdgeMask>> schedule(num_graphs);
  {
    Rng rng(seed + 777);
    for (std::size_t gi = 0; gi < num_graphs; ++gi) {
      gnn::EdgeMask base(base_contexts[gi].graph->num_edges());
      for (int& bit : base) bit = rng.bernoulli(0.5) ? 1 : 0;
      for (std::size_t e = 0; e < rounds * samples_per_round; ++e) {
        gnn::EdgeMask m = base;
        // Flip at most one bit: the sampling distribution of a policy whose
        // entropy has collapsed to a handful of undecided edges.
        if (rng.bernoulli(0.5) && !m.empty()) m[rng.index(m.size())] ^= 1;
        schedule[gi].push_back(std::move(m));
      }
    }
  }

  const auto run_arm = [&](bool optimized) {
    // Fresh contexts so the optimized arm's cache starts cold (its warm-up
    // cost is part of the measurement).
    auto contexts = rl::make_contexts(graphs, spec);
    const bool prev_blocked = nn::kernels::set_blocked(optimized);
    const auto t0 = Clock::now();
    for (std::size_t round = 0; round < rounds; ++round) {
      for (std::size_t gi = 0; gi < num_graphs; ++gi) {
        for (std::size_t s = 0; s < samples_per_round; ++s) {
          const auto& mask = schedule[gi][round * samples_per_round + s];
          if (optimized) {
            (void)rl::evaluate_mask_cached(contexts[gi], mask, placer);
          } else {
            (void)rl::evaluate_mask(contexts[gi], mask, placer);
          }
        }
      }
    }
    const double elapsed = seconds_since(t0);
    nn::kernels::set_blocked(prev_blocked);
    std::uint64_t hits = 0, misses = 0;
    for (const auto& ctx : contexts) {
      hits += ctx.cache->hits();
      misses += ctx.cache->misses();
    }
    return std::tuple<double, std::uint64_t, std::uint64_t>{elapsed, hits, misses};
  };

  AbResult r;
  r.episodes = num_graphs * rounds * samples_per_round;
  const auto [opt_s, hits, misses] = run_arm(true);
  const auto [base_s, no_hits, no_misses] = run_arm(false);
  (void)no_hits;
  (void)no_misses;
  r.seconds_optimized = opt_s;
  r.seconds_baseline = base_s;
  r.episodes_per_sec_optimized = static_cast<double>(r.episodes) / opt_s;
  r.episodes_per_sec_baseline = static_cast<double>(r.episodes) / base_s;
  r.speedup = base_s / opt_s;
  r.cache_hit_rate =
      hits + misses == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(hits + misses);
  return r;
}

std::string json_num(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream os;
  os << std::setprecision(12) << v;
  return os.str();
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace sc;
  const Flags raw(argc, argv);
  if (raw.has("validate")) return validate_json(raw.get_string("validate", ""));

  const auto args = bench::BenchArgs::parse(argc, argv);
  const bool tiny = raw.get_bool("tiny", false);
  const std::string out = raw.get_string("out", "BENCH_perf_train.json");
  std::cout << "[perf_train] Reward-pipeline performance harness"
            << (tiny ? " (tiny)" : "") << "\n";

  Rng rng(args.seed);
  const auto gemm = bench_gemm(tiny, rng);
  std::cout << "  gemm    " << gemm.n << "x" << gemm.k << "x" << gemm.m << ": blocked "
            << metrics::Table::fmt(gemm.gflops_blocked, 2) << " GFLOP/s, naive "
            << metrics::Table::fmt(gemm.gflops_naive, 2) << " GFLOP/s ("
            << metrics::Table::fmt(gemm.gflops_blocked / gemm.gflops_naive, 2)
            << "x)\n";

  const auto train = bench_train(tiny, args.seed);
  std::cout << "  train   " << train.episodes << " episodes in "
            << metrics::Table::fmt(train.seconds, 2) << " s over " << train.epochs
            << " epochs: " << metrics::Table::fmt(train.episodes_per_sec, 1)
            << " episodes/s, cache hit rate "
            << metrics::Table::pct(train.cache_hit_rate) << "\n";

  const auto ab = bench_ab(tiny, args.seed);
  std::cout << "  ab      " << ab.episodes << " episodes: optimized "
            << metrics::Table::fmt(ab.episodes_per_sec_optimized, 1)
            << " episodes/s vs baseline "
            << metrics::Table::fmt(ab.episodes_per_sec_baseline, 1) << " episodes/s ("
            << metrics::Table::fmt(ab.speedup, 2) << "x, hit rate "
            << metrics::Table::pct(ab.cache_hit_rate) << ")\n";

  std::ofstream os(out);
  SC_CHECK(os.good(), "cannot open output file '" << out << "'");
  os << "{\n"
     << "  \"schema_version\": 1,\n"
     << "  \"tiny\": " << (tiny ? "true" : "false") << ",\n"
     << "  \"seed\": " << args.seed << ",\n"
     << "  \"threads\": " << ThreadPool::global().size() << ",\n"
     << "  \"episodes_per_sec\": " << json_num(ab.episodes_per_sec_optimized) << ",\n"
     << "  \"episodes_per_sec_baseline\": " << json_num(ab.episodes_per_sec_baseline)
     << ",\n"
     << "  \"speedup\": " << json_num(ab.speedup) << ",\n"
     << "  \"cache_hit_rate\": " << json_num(ab.cache_hit_rate) << ",\n"
     << "  \"gemm\": {\n"
     << "    \"n\": " << gemm.n << ", \"k\": " << gemm.k << ", \"m\": " << gemm.m
     << ",\n"
     << "    \"gflops_blocked\": " << json_num(gemm.gflops_blocked) << ",\n"
     << "    \"gflops_naive\": " << json_num(gemm.gflops_naive) << ",\n"
     << "    \"speedup\": " << json_num(gemm.gflops_blocked / gemm.gflops_naive)
     << "\n  },\n"
     << "  \"train\": {\n"
     << "    \"episodes\": " << train.episodes << ",\n"
     << "    \"epochs\": " << train.epochs << ",\n"
     << "    \"seconds\": " << json_num(train.seconds) << ",\n"
     << "    \"episodes_per_sec\": " << json_num(train.episodes_per_sec) << ",\n"
     << "    \"cache_hit_rate\": " << json_num(train.cache_hit_rate) << "\n  },\n"
     << "  \"ab\": {\n"
     << "    \"episodes\": " << ab.episodes << ",\n"
     << "    \"seconds_optimized\": " << json_num(ab.seconds_optimized) << ",\n"
     << "    \"seconds_baseline\": " << json_num(ab.seconds_baseline) << ",\n"
     << "    \"episodes_per_sec_optimized\": "
     << json_num(ab.episodes_per_sec_optimized) << ",\n"
     << "    \"episodes_per_sec_baseline\": " << json_num(ab.episodes_per_sec_baseline)
     << ",\n"
     << "    \"speedup\": " << json_num(ab.speedup) << ",\n"
     << "    \"cache_hit_rate\": " << json_num(ab.cache_hit_rate) << "\n  }\n"
     << "}\n";
  os.flush();
  SC_CHECK(os.good(), "JSON write to '" << out << "' failed (disk full or I/O error?)");
  os.close();
  std::cout << "JSON written to " << out << "\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "bench_perf_train: " << e.what() << '\n';
  return 1;
}
