// Table I — main results: AUC and relative improvement w.r.t. Metis across
// all five settings, including the graph-size curriculum for large and
// extra-large graphs and the Metis-oracle variant.
//
// Expected shape (paper Table I): Coarsen+X improves on Metis everywhere;
// the gains grow with graph size when curriculum fine-tuning is applied;
// zero-shot transfer ("direct prediction") already improves on Metis.
#include <iostream>
#include "bench_common.hpp"

#include "nn/serialize.hpp"

namespace {

using namespace sc;

struct Row {
  std::string setting;
  std::string method;
  double auc = 0.0;
  double improvement = 0.0;  // vs Metis in the same block
  bool is_reference = false;
};

std::vector<Row> g_rows;

void record_block(const std::string& setting, const std::vector<metrics::Series>& series) {
  const double x_max = metrics::common_x_max(series);
  const metrics::Cdf ref{std::vector<double>(series.front().values)};
  for (std::size_t i = 0; i < series.size(); ++i) {
    const metrics::Cdf cdf{std::vector<double>(series[i].values)};
    Row row;
    row.setting = setting;
    row.method = series[i].name;
    row.auc = cdf.auc(x_max);
    row.improvement = i == 0 ? 0.0 : metrics::improvement(ref, cdf, x_max);
    row.is_reference = i == 0;
    g_rows.push_back(row);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  ThreadPool& pool = ThreadPool::global();
  std::cout << "[Table I] Main results across all settings\n";

  const core::MetisAllocator metis;

  // ---- Block 1: Small (10K/s, 5 devices, 4-26 nodes) ------------------------
  {
    const auto ds =
        gen::make_dataset(gen::Setting::Small, args.n(40), args.n(30), args.seed);
    const auto spec = rl::to_cluster_spec(ds.config.workload);
    auto framework =
        bench::train_framework(ds.train, spec, args.epochs(16), args.seed + 1);

    baselines::GraphEncDecConfig ged_cfg;
    ged_cfg.seed = args.seed + 2;
    baselines::GraphEncDec ged(ged_cfg);
    bench::train_direct(ged, ds.train, spec, args.epochs(12), args.seed + 3);

    const auto contexts = rl::make_contexts(ds.test, spec);
    const core::DirectModelAllocator ged_alloc(ged);
    const core::CoarsenAllocator ours(framework.policy(), framework.placer(),
                                      "Coarsen+Metis");
    const auto series = bench::compare({&metis, &ged_alloc, &ours}, contexts,
                                       "(10K/s, 5 devices, 4-26 nodes)");
    record_block("10K/s,5dev,4-26", series);
  }

  // ---- Blocks 2+3: Medium, two cluster settings ------------------------------
  gnn::CoarseningPolicy medium_policy;  // carried into the curriculum below
  {
    for (const auto& [setting, label, seed_off] :
         {std::tuple{gen::Setting::MediumSmallCluster, "5K/s,5dev,100-200", 10},
          std::tuple{gen::Setting::Medium, "10K/s,10dev,100-200", 20}}) {
      const auto ds = gen::make_dataset(setting, args.n(24), args.n(24),
                                        args.seed + static_cast<std::uint64_t>(seed_off));
      const auto spec = rl::to_cluster_spec(ds.config.workload);
      auto framework = bench::train_framework(
          ds.train, spec, args.epochs(16), args.seed + static_cast<std::uint64_t>(seed_off) + 1);

      baselines::GraphEncDecConfig ged_cfg;
      ged_cfg.seed = args.seed + static_cast<std::uint64_t>(seed_off) + 2;
      baselines::GraphEncDec ged(ged_cfg);
      bench::train_direct(ged, ds.train, spec, args.epochs(6),
                          args.seed + static_cast<std::uint64_t>(seed_off) + 3);

      const auto contexts = rl::make_contexts(ds.test, spec);
      const core::CoarsenAllocator cm(framework.policy(), framework.placer(),
                                      "Coarsen+Metis");
      const core::CoarsenAllocator cg(framework.policy(), baselines::learned_placer(ged),
                                      "Coarsen+Graph-enc-dec");
      const auto series = bench::compare({&metis, &cm, &cg}, contexts,
                                         std::string("(") + label + ")");
      record_block(label, series);
      if (setting == gen::Setting::Medium) medium_policy = framework.policy();
    }
  }

  // ---- Block 4: Large (10K/s, 10 devices, 400-500) — curriculum from medium --
  core::FrameworkOptions curriculum_options;
  curriculum_options.trainer.metis_guidance = true;
  curriculum_options.trainer.seed = args.seed + 30;
  core::CoarsenPartitionFramework curriculum_fw(curriculum_options);
  nn::copy_parameters(medium_policy.parameters(), curriculum_fw.policy().parameters());
  {
    const auto ds =
        gen::make_dataset(gen::Setting::Large, args.n(10), args.n(10), args.seed + 31);
    const auto spec = rl::to_cluster_spec(ds.config.workload);
    curriculum_fw.train(ds.train, spec, args.epochs(6));  // fine-tune

    baselines::GraphEncDecConfig ged_cfg;
    ged_cfg.seed = args.seed + 32;
    baselines::GraphEncDec ged(ged_cfg);
    bench::train_direct(ged, ds.train, spec, args.epochs(3), args.seed + 33);

    const auto contexts = rl::make_contexts(ds.test, spec);
    const core::CoarsenAllocator cm(curriculum_fw.policy(), curriculum_fw.placer(),
                                    "Coarsen+Metis (curriculum)");
    const core::CoarsenAllocator cg(curriculum_fw.policy(),
                                    baselines::learned_placer(ged),
                                    "Coarsen+Graph-enc-dec");
    const auto series = bench::compare({&metis, &cm, &cg}, contexts,
                                       "(10K/s, 10 devices, 400-500 nodes)");
    record_block("10K/s,10dev,400-500", series);
  }

  // ---- Blocks 5+6: XLarge (10K/s, 20 devices, 1000-2000), two replicates -----
  for (const std::uint64_t rep : {0ULL, 1ULL}) {
    const auto ds = gen::make_dataset(gen::Setting::XLarge, args.n(4), args.n(4),
                                      args.seed + 40 + rep * 7);
    const auto spec = rl::to_cluster_spec(ds.config.workload);
    const auto contexts = rl::make_contexts(ds.test, spec);

    // "Direct prediction": the large-level policy applied zero-shot.
    const core::CoarsenAllocator direct(curriculum_fw.policy(), curriculum_fw.placer(),
                                        "Coarsen+Metis (direct prediction)");
    const auto direct_eval = core::evaluate_allocator(direct, contexts, &pool);

    // "+curriculum": fine-tune a copy on this level's training split.
    core::FrameworkOptions xl_options = curriculum_options;
    xl_options.trainer.seed = args.seed + 50 + rep;
    core::CoarsenPartitionFramework xl_fw(xl_options);
    nn::copy_parameters(curriculum_fw.policy().parameters(),
                        xl_fw.policy().parameters());
    xl_fw.train(ds.train, spec, args.epochs(3));

    const core::CoarsenAllocator tuned(xl_fw.policy(), xl_fw.placer(),
                                       "Coarsen+Metis (+curriculum)");
    const core::CoarsenAllocator oracle(xl_fw.policy(), rl::metis_oracle_placer(),
                                        "Coarsen+Metis-oracle (+curriculum)");

    const auto metis_eval = core::evaluate_allocator(metis, contexts, &pool);
    const auto tuned_eval = core::evaluate_allocator(tuned, contexts, &pool);
    const auto oracle_eval = core::evaluate_allocator(oracle, contexts, &pool);

    std::vector<metrics::Series> series{bench::to_series(metis_eval),
                                        bench::to_series(direct_eval),
                                        bench::to_series(tuned_eval),
                                        bench::to_series(oracle_eval)};
    const std::string label =
        std::string("10K/s,20dev,1K-2K (replicate ") + std::to_string(rep) + ")";
    std::cout << "\n=== (" << label << ") ===\n";
    metrics::print_cdf_comparison(std::cout, series);
    metrics::print_auc_table(std::cout, series);
    record_block(label, series);
  }

  // ---- Final paper-style table ------------------------------------------------
  std::cout << "\n=== Table I (reproduction) ===\n";
  metrics::Table t({"Setting", "Method", "AUC", "Imp. wrt Metis"});
  for (const Row& r : g_rows) {
    t.add_row({r.setting, r.method, metrics::Table::fmt(r.auc, 0),
               r.is_reference ? "-" : metrics::Table::pct(r.improvement)});
  }
  t.print(std::cout);
  return 0;
}
