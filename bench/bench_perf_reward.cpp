// bench_perf_reward — reward (mask-evaluation) hot-path harness
// (BENCH_perf_reward.json).
//
// Measures the PR-5 levers on the cache-miss side of training: every episode
// cache miss pays the full contract -> metis_allocate_coarse ->
// relative_throughput chain, so this bench A/Bs exactly that chain with the
// workspace fast paths on vs off:
//   contract    : contract() with the per-thread ContractionScratch
//                 (flat CSR groups + WeightedGraph::rebuild) vs the legacy
//                 allocating path.
//   partition   : metis_allocate_coarse with PartitionWorkspace (reused
//                 coarsening levels / bisection frames / refinement buffers)
//                 + bucketed FM gain structure vs the legacy allocating
//                 partitioner with full-rescan FM.
//   end_to_end  : uncached evaluate_mask over a fixed pool of random masks
//                 spanning several densities — the real cache-miss reward
//                 path — with ALL toggles flipped together.
// Every arm replays the identical mask pool and the end-to-end rewards are
// asserted bit-identical between arms (the fast paths are exact).
//
// Usage:
//   bench_perf_reward [--tiny] [--out BENCH_perf_reward.json] [--seed N]
//                     [--threads N] [--verbose]
//   bench_perf_reward --validate <file>  # re-parse an emitted JSON; exits
//                                        # non-zero if malformed (ctest smoke)
#include <chrono>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <thread>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "gnn/policy.hpp"
#include "graph/contraction.hpp"
#include "nn/simd.hpp"
#include "partition/allocate.hpp"
#include "partition/mlpart.hpp"
#include "partition/workspace.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// ---------------------------------------------------------------------------
// Minimal JSON validation (recursive descent), mirroring bench_perf_train.
// ---------------------------------------------------------------------------
struct JsonParser {
  const std::string& s;
  std::size_t pos = 0;

  explicit JsonParser(const std::string& text) : s(text) {}

  [[noreturn]] void fail(const std::string& what) const {
    throw sc::Error("JSON parse error at byte " + std::to_string(pos) + ": " + what);
  }
  void skip_ws() {
    while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                              s[pos] == '\r')) {
      ++pos;
    }
  }
  char peek() {
    skip_ws();
    if (pos >= s.size()) fail("unexpected end of input");
    return s[pos];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos;
  }
  void parse_string() {
    expect('"');
    while (pos < s.size() && s[pos] != '"') {
      if (s[pos] == '\\') ++pos;  // skip escaped char
      ++pos;
    }
    if (pos >= s.size()) fail("unterminated string");
    ++pos;
  }
  double parse_number() {
    skip_ws();
    const std::size_t start = pos;
    if (pos < s.size() && (s[pos] == '-' || s[pos] == '+')) ++pos;
    while (pos < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[pos])) || s[pos] == '.' ||
            s[pos] == 'e' || s[pos] == 'E' || s[pos] == '-' || s[pos] == '+')) {
      ++pos;
    }
    if (pos == start) fail("expected a number");
    const double v = std::strtod(s.substr(start, pos - start).c_str(), nullptr);
    if (!std::isfinite(v)) fail("non-finite number");
    return v;
  }
  void parse_literal(const char* lit) {
    skip_ws();
    for (const char* p = lit; *p; ++p, ++pos) {
      if (pos >= s.size() || s[pos] != *p) fail(std::string("expected '") + lit + "'");
    }
  }
  void parse_value() {
    const char c = peek();
    if (c == '{') {
      parse_object();
    } else if (c == '[') {
      expect('[');
      if (peek() != ']') {
        parse_value();
        while (peek() == ',') {
          ++pos;
          parse_value();
        }
      }
      expect(']');
    } else if (c == '"') {
      parse_string();
    } else if (c == 't') {
      parse_literal("true");
    } else if (c == 'f') {
      parse_literal("false");
    } else if (c == 'n') {
      parse_literal("null");
    } else {
      (void)parse_number();
    }
  }
  std::vector<std::string> parse_object() {
    std::vector<std::string> keys;
    expect('{');
    if (peek() != '}') {
      for (;;) {
        skip_ws();
        const std::size_t key_start = pos + 1;
        parse_string();
        keys.push_back(s.substr(key_start, pos - key_start - 1));
        expect(':');
        parse_value();
        if (peek() != ',') break;
        ++pos;
      }
    }
    expect('}');
    return keys;
  }
};

int validate_json(const std::string& path) {
  std::ifstream is(path);
  if (!is.good()) {
    std::cerr << "bench_perf_reward: cannot open '" << path << "'\n";
    return 1;
  }
  std::stringstream buf;
  buf << is.rdbuf();
  const std::string text = buf.str();
  try {
    JsonParser parser(text);
    const auto keys = parser.parse_object();
    parser.skip_ws();
    if (parser.pos != text.size()) parser.fail("trailing garbage after object");
    for (const char* required : {"schema_version", "speedup", "identical", "contract",
                                 "partition", "end_to_end", "parallel_bisection", "env"}) {
      bool found = false;
      for (const auto& k : keys) found = found || k == required;
      if (!found) throw sc::Error(std::string("missing required key '") + required + "'");
    }
  } catch (const std::exception& e) {
    std::cerr << "bench_perf_reward: '" << path << "' is malformed: " << e.what() << '\n';
    return 1;
  }
  std::cout << "OK: " << path << " is well-formed JSON with the expected keys\n";
  return 0;
}

// ---------------------------------------------------------------------------
// Shared dataset: Setting::Medium (100-200 node graphs, 10 devices) — the
// training regime where a cache miss is most expensive (the multilevel
// partitioner dominates) — with a fixed pool of random masks spanning sparse,
// balanced, and dense collapse decisions.
// ---------------------------------------------------------------------------
struct Level {
  std::vector<sc::graph::StreamGraph> graphs;
  std::vector<sc::rl::GraphContext> contexts;
  std::vector<std::vector<sc::gnn::EdgeMask>> masks;  // per graph
};

sc::gen::Setting parse_setting(const std::string& name) {
  if (name == "small") return sc::gen::Setting::Small;
  if (name == "medium") return sc::gen::Setting::Medium;
  if (name == "large") return sc::gen::Setting::Large;
  if (name == "xlarge") return sc::gen::Setting::XLarge;
  throw sc::Error("unknown --setting '" + name + "' (small|medium|large|xlarge)");
}

Level make_level(bool tiny, sc::gen::Setting setting, std::uint64_t seed) {
  using namespace sc;
  const gen::GeneratorConfig gcfg =
      gen::setting_config(tiny ? gen::Setting::Small : setting);
  Level level;
  level.graphs = gen::generate_graphs(gcfg, tiny ? 4 : 8, seed);
  level.contexts = rl::make_contexts(level.graphs, rl::to_cluster_spec(gcfg.workload));

  const double densities[] = {0.2, 0.5, 0.8};
  const std::size_t per_density = tiny ? 1 : 2;
  Rng rng(seed * 1000003 + 17);
  level.masks.resize(level.graphs.size());
  for (std::size_t gi = 0; gi < level.graphs.size(); ++gi) {
    for (const double p : densities) {
      for (std::size_t r = 0; r < per_density; ++r) {
        gnn::EdgeMask mask(level.graphs[gi].num_edges());
        for (auto& bit : mask) bit = rng.bernoulli(p) ? 1 : 0;
        level.masks[gi].push_back(std::move(mask));
      }
    }
  }
  return level;
}

/// Flips every PR-5 fast-path toggle at once; returns the previous settings.
struct Toggles {
  bool contraction, workspace, fm;
};

Toggles set_fast_paths(bool on) {
  Toggles prev;
  prev.contraction = sc::graph::contraction_scratch::set_enabled(on);
  prev.workspace = sc::partition::workspace::set_enabled(on);
  prev.fm = sc::partition::fm_buckets::set_enabled(on);
  return prev;
}

void restore(const Toggles& t) {
  sc::graph::contraction_scratch::set_enabled(t.contraction);
  sc::partition::workspace::set_enabled(t.workspace);
  sc::partition::fm_buckets::set_enabled(t.fm);
}

/// Repeats `body` until `min_seconds` elapse; returns (reps, elapsed).
template <typename Fn>
std::pair<std::size_t, double> time_loop(double min_seconds, Fn&& body) {
  body();  // warm up (fills thread-local workspaces on the fast arm)
  std::size_t reps = 0;
  const auto t0 = Clock::now();
  double elapsed = 0.0;
  while (elapsed < min_seconds) {
    body();
    ++reps;
    elapsed = seconds_since(t0);
  }
  return {reps, elapsed};
}

struct AbPhase {
  std::size_t ops_per_rep = 0;
  double us_fast = 0.0;
  double us_legacy = 0.0;
  double ops_per_sec_fast = 0.0;
  double ops_per_sec_legacy = 0.0;
  double speedup = 0.0;
};

/// Interleaves fast/legacy rounds and keeps each arm's fastest round: load
/// spikes from the host hit both arms alike and the min discards them, so
/// the ratio reflects the code, not the machine's mood. `set_arm(bool)`
/// selects which arm the next round runs.
template <typename SetFn, typename Fn>
AbPhase ab_phase_with(SetFn&& set_arm, double min_seconds, std::size_t ops_per_rep,
                      Fn&& body) {
  AbPhase r;
  r.ops_per_rep = ops_per_rep;
  const std::size_t rounds = 4;
  const double per_round = min_seconds / static_cast<double>(rounds);
  double best_fast = std::numeric_limits<double>::infinity();
  double best_legacy = best_fast;
  for (std::size_t round = 0; round < rounds; ++round) {
    set_arm(true);
    const auto [fast_reps, fast_s] = time_loop(per_round, body);
    best_fast = std::min(best_fast, fast_s / static_cast<double>(fast_reps));
    set_arm(false);
    const auto [legacy_reps, legacy_s] = time_loop(per_round, body);
    best_legacy = std::min(best_legacy, legacy_s / static_cast<double>(legacy_reps));
  }
  const double ops = static_cast<double>(ops_per_rep);
  r.us_fast = best_fast / ops * 1e6;
  r.us_legacy = best_legacy / ops * 1e6;
  r.ops_per_sec_fast = 1e6 / r.us_fast;
  r.ops_per_sec_legacy = 1e6 / r.us_legacy;
  r.speedup = r.us_legacy / r.us_fast;
  return r;
}

template <typename Fn>
AbPhase ab_phase(double min_seconds, std::size_t ops_per_rep, Fn&& body) {
  const Toggles prev = set_fast_paths(true);
  AbPhase r = ab_phase_with([](bool on) { set_fast_paths(on); }, min_seconds,
                            ops_per_rep, body);
  restore(prev);
  return r;
}

// ---------------------------------------------------------------------------
// Phase 1: contraction only (contract() fast vs legacy).
// ---------------------------------------------------------------------------
AbPhase bench_contract(const Level& level, bool tiny) {
  using namespace sc;
  std::size_t ops = 0;
  for (const auto& per_graph : level.masks) ops += per_graph.size();
  double sink = 0.0;
  const auto result = ab_phase(tiny ? 0.05 : 0.5, ops, [&] {
    for (std::size_t gi = 0; gi < level.contexts.size(); ++gi) {
      const rl::GraphContext& ctx = level.contexts[gi];
      for (const gnn::EdgeMask& mask : level.masks[gi]) {
        const graph::Coarsening c = gnn::CoarseningPolicy::apply(*ctx.graph, ctx.profile, mask);
        sink += c.compression_ratio();
      }
    }
  });
  if (sink == 42.125) std::cerr << "";  // keep the contractions alive
  return result;
}

// ---------------------------------------------------------------------------
// Phase 2: coarse partitioning only (metis_allocate_coarse fast vs legacy)
// over pre-contracted coarse graphs.
// ---------------------------------------------------------------------------
AbPhase bench_partition(const Level& level, bool tiny) {
  using namespace sc;
  // One mid-density coarsening per graph, contracted once up front.
  std::vector<graph::Coarsening> coarse;
  for (std::size_t gi = 0; gi < level.contexts.size(); ++gi) {
    const rl::GraphContext& ctx = level.contexts[gi];
    coarse.push_back(gnn::CoarseningPolicy::apply(*ctx.graph, ctx.profile,
                                                  level.masks[gi][level.masks[gi].size() / 2]));
  }
  double sink = 0.0;
  const auto result = ab_phase(tiny ? 0.05 : 0.5, coarse.size(), [&] {
    for (std::size_t gi = 0; gi < coarse.size(); ++gi) {
      const sim::Placement p = partition::metis_allocate_coarse(
          coarse[gi].coarse, level.contexts[gi].simulator.spec(), {});
      sink += static_cast<double>(p.size());
    }
  });
  if (sink == 42.125) std::cerr << "";  // keep the partitions alive
  return result;
}

// ---------------------------------------------------------------------------
// Phase 3: the full cache-miss reward path (uncached evaluate_mask), all
// toggles together, rewards asserted bit-identical between arms.
// ---------------------------------------------------------------------------
struct EndToEndResult {
  AbPhase ab;
  bool identical = false;
};

EndToEndResult bench_end_to_end(const Level& level, bool tiny) {
  using namespace sc;
  const rl::CoarsePlacer placer = rl::metis_placer();
  std::size_t ops = 0;
  for (const auto& per_graph : level.masks) ops += per_graph.size();

  std::vector<double> rewards;
  const auto run_all = [&] {
    rewards.clear();
    for (std::size_t gi = 0; gi < level.contexts.size(); ++gi) {
      for (const gnn::EdgeMask& mask : level.masks[gi]) {
        rewards.push_back(rl::evaluate_mask(level.contexts[gi], mask, placer).reward);
      }
    }
  };

  EndToEndResult r;
  const Toggles prev = set_fast_paths(true);
  run_all();
  const std::vector<double> rewards_fast = rewards;
  set_fast_paths(false);
  run_all();
  const std::vector<double> rewards_legacy = rewards;
  restore(prev);
  r.identical = rewards_fast == rewards_legacy;  // bitwise: == on doubles
  SC_CHECK(r.identical, "fast and legacy reward paths diverged");

  r.ab = ab_phase(tiny ? 0.1 : 1.0, ops, run_all);
  return r;
}

// ---------------------------------------------------------------------------
// Phase 4: parallel recursive bisection (partition::set_parallel_bisection on
// vs off) over the same pre-contracted coarse graphs as phase 2, placements
// asserted identical between arms (the toggle is an execution-strategy switch
// only — per-subtree split RNG streams make it bit-identical by design). On a
// single-core pool both arms take the serial path, so a ~1.0x ratio there is
// the honest expectation; the win appears with a multi-worker pool.
// ---------------------------------------------------------------------------
struct ParallelBisectionResult {
  AbPhase ab;
  bool identical = false;
  std::size_t pool_threads = 0;
};

ParallelBisectionResult bench_parallel_bisection(const Level& level, bool tiny) {
  using namespace sc;
  std::vector<graph::Coarsening> coarse;
  for (std::size_t gi = 0; gi < level.contexts.size(); ++gi) {
    const rl::GraphContext& ctx = level.contexts[gi];
    coarse.push_back(gnn::CoarseningPolicy::apply(*ctx.graph, ctx.profile,
                                                  level.masks[gi][level.masks[gi].size() / 2]));
  }
  const auto place_all = [&](std::vector<sim::Placement>* placements, double* sink) {
    for (std::size_t gi = 0; gi < coarse.size(); ++gi) {
      sim::Placement p = partition::metis_allocate_coarse(
          coarse[gi].coarse, level.contexts[gi].simulator.spec(), {});
      if (sink != nullptr) *sink += static_cast<double>(p.size());
      if (placements != nullptr) placements->push_back(std::move(p));
    }
  };

  ParallelBisectionResult r;
  r.pool_threads = ThreadPool::global().size();

  std::vector<sim::Placement> on, off;
  const bool prev = partition::set_parallel_bisection(true);
  place_all(&on, nullptr);
  partition::set_parallel_bisection(false);
  place_all(&off, nullptr);
  partition::set_parallel_bisection(prev);
  r.identical = on == off;
  SC_CHECK(r.identical, "parallel and serial bisection placements diverged");

  double sink = 0.0;
  r.ab = ab_phase_with([](bool arm) { partition::set_parallel_bisection(arm); },
                       tiny ? 0.05 : 0.5, coarse.size(),
                       [&] { place_all(nullptr, &sink); });
  if (sink == 42.125) std::cerr << "";  // keep the partitions alive
  return r;
}

std::string json_num(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream os;
  os << std::setprecision(12) << v;
  return os.str();
}

void phase_json(std::ostream& os, const char* name, const AbPhase& p, bool last) {
  os << "  \"" << name << "\": {\n"
     << "    \"ops_per_rep\": " << p.ops_per_rep << ",\n"
     << "    \"us_fast\": " << json_num(p.us_fast) << ",\n"
     << "    \"us_legacy\": " << json_num(p.us_legacy) << ",\n"
     << "    \"ops_per_sec_fast\": " << json_num(p.ops_per_sec_fast) << ",\n"
     << "    \"ops_per_sec_legacy\": " << json_num(p.ops_per_sec_legacy) << ",\n"
     << "    \"speedup\": " << json_num(p.speedup) << "\n  }" << (last ? "\n" : ",\n");
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace sc;
  const Flags raw(argc, argv);
  if (raw.has("validate")) return validate_json(raw.get_string("validate", ""));

  const auto args = bench::BenchArgs::parse(argc, argv);
  const bool tiny = raw.get_bool("tiny", false);
  const std::string setting_name = raw.get_string("setting", "medium");
  const gen::Setting setting = parse_setting(setting_name);
  const std::string out = raw.get_string("out", "BENCH_perf_reward.json");
  std::cout << "[perf_reward] Reward hot-path harness" << (tiny ? " (tiny)" : "")
            << " setting=" << setting_name << "\n";

  const Level level = make_level(tiny, setting, args.seed);
  std::size_t total_masks = 0, total_edges = 0;
  for (const auto& per_graph : level.masks) total_masks += per_graph.size();
  for (const auto& g : level.graphs) total_edges += g.num_edges();
  std::cout << "  level   " << level.graphs.size() << " graphs, " << total_edges
            << " edges, " << total_masks << " masks (densities 0.2/0.5/0.8), "
            << level.contexts[0].simulator.spec().num_devices << " devices\n";

  const auto contract = bench_contract(level, tiny);
  std::cout << "  contract   " << metrics::Table::fmt(contract.us_fast, 1)
            << " us/op scratch vs " << metrics::Table::fmt(contract.us_legacy, 1)
            << " legacy (" << metrics::Table::fmt(contract.speedup, 2) << "x)\n";

  const auto part = bench_partition(level, tiny);
  std::cout << "  partition  " << metrics::Table::fmt(part.us_fast, 1)
            << " us/op workspace+buckets vs " << metrics::Table::fmt(part.us_legacy, 1)
            << " legacy (" << metrics::Table::fmt(part.speedup, 2) << "x)\n";

  const auto e2e = bench_end_to_end(level, tiny);
  std::cout << "  end_to_end " << metrics::Table::fmt(e2e.ab.us_fast, 1)
            << " us/eval fast vs " << metrics::Table::fmt(e2e.ab.us_legacy, 1)
            << " legacy (" << metrics::Table::fmt(e2e.ab.speedup, 2)
            << "x), rewards bit-identical\n";

  const auto pbis = bench_parallel_bisection(level, tiny);
  std::cout << "  par_bisect " << metrics::Table::fmt(pbis.ab.us_fast, 1)
            << " us/op parallel vs " << metrics::Table::fmt(pbis.ab.us_legacy, 1)
            << " serial (" << metrics::Table::fmt(pbis.ab.speedup, 2) << "x on "
            << pbis.pool_threads << "-thread pool), placements identical\n";

  std::ofstream os(out);
  SC_CHECK(os.good(), "cannot open output file '" << out << "'");
  os << "{\n"
     << "  \"schema_version\": 1,\n"
     << "  \"tiny\": " << (tiny ? "true" : "false") << ",\n"
     << "  \"setting\": \"" << (tiny ? "small" : setting_name) << "\",\n"
     << "  \"seed\": " << args.seed << ",\n"
     << "  \"threads\": " << ThreadPool::global().size() << ",\n"
     << "  \"graphs\": " << level.graphs.size() << ",\n"
     << "  \"masks\": " << total_masks << ",\n"
     << "  \"identical\": " << (e2e.identical ? "true" : "false") << ",\n"
     << "  \"speedup\": " << json_num(e2e.ab.speedup) << ",\n";
  phase_json(os, "contract", contract, false);
  phase_json(os, "partition", part, false);
  phase_json(os, "end_to_end", e2e.ab, false);
  os << "  \"parallel_bisection\": {\n"
     << "    \"pool_threads\": " << pbis.pool_threads << ",\n"
     << "    \"identical\": " << (pbis.identical ? "true" : "false") << ",\n"
     << "    \"us_parallel\": " << json_num(pbis.ab.us_fast) << ",\n"
     << "    \"us_serial\": " << json_num(pbis.ab.us_legacy) << ",\n"
     << "    \"speedup\": " << json_num(pbis.ab.speedup) << "\n  },\n"
     << "  \"env\": {\n"
     << "    \"threads\": " << ThreadPool::global().size() << ",\n"
     << "    \"hardware_concurrency\": " << std::thread::hardware_concurrency() << ",\n"
     << "    \"simd_tier\": \"" << nn::simd::tier_name(nn::simd::active()) << "\",\n"
     << "    \"simd_detected\": \"" << nn::simd::tier_name(nn::simd::detect()) << "\"\n"
     << "  }\n"
     << "}\n";
  os.flush();
  SC_CHECK(os.good(), "JSON write to '" << out << "' failed (disk full or I/O error?)");
  os.close();
  std::cout << "JSON written to " << out << "\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "bench_perf_reward: " << e.what() << '\n';
  return 1;
}
